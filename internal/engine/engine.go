// Package engine exposes the database-engine surface the paper's online PQO
// techniques require (§4.2): for one query template, a full optimizer call,
// a selectivity-vector computation, and an efficient Recost API — together
// with wall-clock accounting that the experiments (notably Table 3) report.
package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/memo"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// CachedPlan is the unit stored in a PQO plan cache: the physical plan, its
// shrunken-memo recost representation (Appendix B), and its structural
// fingerprint.
type CachedPlan struct {
	Plan *plan.Plan
	SM   *memo.ShrunkenMemo
}

// Fingerprint returns the plan's structural identity.
func (cp *CachedPlan) Fingerprint() string { return cp.Plan.Fingerprint() }

// MemoryBytes estimates the plan-cache memory charged to this plan (§6.1).
// It tolerates plans without a shrunken memo (used by synthetic test
// engines).
func (cp *CachedPlan) MemoryBytes() int {
	n := len(cp.Plan.Fingerprint())
	if cp.SM != nil {
		n += cp.SM.Size()
	}
	return n
}

// TemplateEngine binds an optimizer to one query template. All PQO
// techniques for that template share one TemplateEngine. It is safe for
// concurrent use: Optimize and Recost touch only the immutable template
// and optimizer plus atomic accounting, so any number of Recost calls (the
// PQO cost checks' hot path) proceed in parallel.
type TemplateEngine struct {
	Tpl *query.Template
	Opt *memo.Optimizer

	optNanos    atomic.Int64
	recostNanos atomic.Int64
	optCalls    atomic.Int64
	recostCalls atomic.Int64

	// rc memoizes recost results per (plan fingerprint, sv hash). Valid
	// until the statistics store changes; see FlushRecostCache.
	rc recostCache
}

// NewTemplateEngine builds an engine for tpl over an existing optimizer.
func NewTemplateEngine(tpl *query.Template, opt *memo.Optimizer) (*TemplateEngine, error) {
	if err := tpl.Validate(); err != nil {
		return nil, err
	}
	return &TemplateEngine{Tpl: tpl, Opt: opt}, nil
}

// Dimensions returns the template's parameter count d.
func (e *TemplateEngine) Dimensions() int { return e.Tpl.Dimensions() }

// Optimize performs a full optimizer call for selectivity vector sv,
// returning the winning plan (with its recost representation) and its cost.
func (e *TemplateEngine) Optimize(sv []float64) (*CachedPlan, float64, error) {
	start := time.Now()
	p, c, err := e.Opt.Optimize(e.Tpl, sv)
	if err != nil {
		return nil, 0, err
	}
	sm, err := memo.NewShrunkenMemo(e.Opt, p, e.Tpl)
	if err != nil {
		return nil, 0, err
	}
	e.optNanos.Add(time.Since(start).Nanoseconds())
	e.optCalls.Add(1)
	return &CachedPlan{Plan: p, SM: sm}, c, nil
}

// Recost computes the cost of a cached plan at sv via its shrunken memo,
// consulting the recost result cache first. Callers recosting several plans
// for one instance should batch through PrepareRecost instead.
func (e *TemplateEngine) Recost(cp *CachedPlan, sv []float64) (float64, error) {
	if cp == nil {
		return 0, fmt.Errorf("engine: recost of nil cached plan")
	}
	key := recostKey{fp: cp.Plan.Fingerprint(), svh: stats.HashSVector(sv)}
	if c, ok := e.rc.get(key, sv); ok {
		return c, nil
	}
	start := time.Now()
	c, err := cp.SM.Recost(e.Opt, sv)
	if err != nil {
		return 0, err
	}
	e.recostNanos.Add(time.Since(start).Nanoseconds())
	e.recostCalls.Add(1)
	e.rc.put(key, sv, c)
	return c, nil
}

// RecostCacheCounters reports cumulative recost-cache hits and misses.
func (e *TemplateEngine) RecostCacheCounters() (hits, misses int64) {
	return e.rc.counters()
}

// SetStats swaps the optimizer's statistics store (a statistics reload) and
// flushes the recost result cache: cached costs are valid only for the
// statistics they were computed under. Swapping the store any other way
// leaves stale costs behind — the cacheinvalidation analyzer enforces this
// pairing (docs/LINT.md).
func (e *TemplateEngine) SetStats(st *stats.Store) {
	e.Opt.Stats = st
	e.FlushRecostCache()
}

// FlushRecostCache drops every cached recost result. Cached costs are
// deterministic in (plan, sv, statistics), so the only invalidation event
// is a statistics reload — call this whenever the engine's stats store is
// rebuilt or swapped.
func (e *TemplateEngine) FlushRecostCache() { e.rc.flush() }

// EnvPoolCounters reports the optimizer's pooled-environment accounting:
// environments handed out and pool reuses.
func (e *TemplateEngine) EnvPoolCounters() (gets, reuses int64) {
	return e.Opt.EnvPoolCounters()
}

// Timing reports cumulative wall-clock accounting.
func (e *TemplateEngine) Timing() (optTime, recostTime time.Duration, optCalls, recostCalls int64) {
	return time.Duration(e.optNanos.Load()), time.Duration(e.recostNanos.Load()),
		e.optCalls.Load(), e.recostCalls.Load()
}

// ResetTiming zeroes the wall-clock accounting (used between experiment
// phases that share an engine).
func (e *TemplateEngine) ResetTiming() {
	e.optNanos.Store(0)
	e.recostNanos.Store(0)
	e.optCalls.Store(0)
	e.recostCalls.Store(0)
}

// System bundles a catalog with its statistics and optimizer: the "database
// instance" experiments run against.
type System struct {
	Cat   *catalog.Catalog
	Gen   *datagen.Generator
	Stats *stats.Store
	Opt   *memo.Optimizer
}

// NewSystem builds statistics and an optimizer for cat with the default
// cost model.
func NewSystem(cat *catalog.Catalog, seed int64) (*System, error) {
	gen := datagen.New(cat, seed)
	st, err := stats.Build(cat, gen)
	if err != nil {
		return nil, fmt.Errorf("engine: building statistics for %s: %w", cat.Name, err)
	}
	return &System{
		Cat:   cat,
		Gen:   gen,
		Stats: st,
		Opt:   memo.NewOptimizer(cat, cost.DefaultModel(), st),
	}, nil
}

// EngineFor returns a TemplateEngine for tpl over this system.
func (s *System) EngineFor(tpl *query.Template) (*TemplateEngine, error) {
	return NewTemplateEngine(tpl, s.Opt)
}

// Rehydrate rebuilds a CachedPlan (including its shrunken-memo recost
// representation) from a bare plan tree — used when importing a persisted
// plan cache.
func (e *TemplateEngine) Rehydrate(p *plan.Plan) (*CachedPlan, error) {
	if p == nil || p.Root == nil {
		return nil, fmt.Errorf("engine: rehydrate of nil plan")
	}
	sm, err := memo.NewShrunkenMemo(e.Opt, p, e.Tpl)
	if err != nil {
		return nil, err
	}
	return &CachedPlan{Plan: p, SM: sm}, nil
}
