package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/memo"
	"repro/internal/stats"
)

// PreparedInstance is a per-query-instance recosting context: the pooled
// selectivity environment plus the instance's cache-key hash, built once and
// used to recost any number of candidate plans. This is the batched form of
// TemplateEngine.Recost — SCR's top-k scan, ProbeCheck and the redundancy
// sweep recost N plans per instance, and pay for selectivity-state
// construction once instead of N times.
//
// A PreparedInstance is single-goroutine state; concurrent instances each
// prepare their own. Release returns it (and its environment) to the pool.
type PreparedInstance struct {
	eng *TemplateEngine
	env *memo.Env
	sv  []float64
	svh uint64
}

// EpochID returns the statistics-epoch id this instance was prepared
// under. Every Recost through the instance is computed — and cached —
// against exactly this generation.
func (pi *PreparedInstance) EpochID() uint64 { return pi.env.EpochID() }

var preparedPool = sync.Pool{New: func() any { return new(PreparedInstance) }}

// PrepareRecost builds a recosting context for one instance's selectivity
// vector. The returned instance borrows sv — the caller must not mutate it
// until Release.
func (e *TemplateEngine) PrepareRecost(sv []float64) (*PreparedInstance, error) {
	//lint:allow envpool pool manager: PreparedInstance owns the env until its own Release
	env, err := e.Opt.PrepareEnv(e.Tpl, sv)
	if err != nil {
		return nil, err
	}
	pi := preparedPool.Get().(*PreparedInstance)
	pi.eng = e
	//lint:allow envpool pool manager: Release returns this env to the pool
	pi.env = env
	pi.sv = sv
	pi.svh = stats.HashSVector(sv)
	return pi, nil
}

// Recost computes the cost of a cached plan at this instance's selectivity
// vector, consulting the engine's recost result cache first.
func (pi *PreparedInstance) Recost(cp *CachedPlan) (float64, error) {
	if cp == nil {
		return 0, fmt.Errorf("engine: recost of nil cached plan")
	}
	e := pi.eng
	key := recostKey{fp: cp.Plan.Fingerprint(), svh: pi.svh, epoch: pi.env.EpochID()}
	if c, ok := e.rc.get(key, pi.sv); ok {
		return c, nil
	}
	start := time.Now()
	c, err := cp.SM.RecostWith(e.Opt, pi.env)
	if err != nil {
		return 0, err
	}
	e.recostNanos.Add(time.Since(start).Nanoseconds())
	e.recostCalls.Add(1)
	e.rc.put(key, pi.sv, c)
	return c, nil
}

// Release returns the instance's pooled state. The instance must not be
// used afterwards.
func (pi *PreparedInstance) Release() {
	if pi == nil {
		return
	}
	pi.eng.Opt.ReleaseEnv(pi.env)
	pi.eng, pi.env, pi.sv = nil, nil, nil
	preparedPool.Put(pi)
}
