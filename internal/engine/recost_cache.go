package engine

import (
	"sync"

	"repro/internal/stripe"
)

// recostKey identifies one (plan, instance, statistics generation) recost
// result: the plan's structural fingerprint (precomputed by plan.New, so
// keying allocates nothing), the selectivity vector's hash, and the
// statistics-epoch id the cost was derived under. Keying by epoch makes a
// stats advance invalidation-free: entries from the previous generation
// can never satisfy lookups made under the new one and age out under the
// shard-capacity sweep instead of a global flush.
type recostKey struct {
	fp    string
	svh   uint64
	epoch uint64
}

// recostEntry stores the result together with the exact vector it was
// computed for, so a (vanishingly unlikely) hash collision degrades to a
// miss instead of returning a wrong cost.
type recostEntry struct {
	cost float64
	sv   []float64
}

const (
	// recostShards spreads the cache over independently locked maps so
	// concurrent Process calls on different goroutines rarely contend.
	recostShards = 16
	// recostShardCap bounds each shard; a full shard is cleared wholesale
	// (costs were cheap to derive, so crude eviction beats LRU bookkeeping).
	recostShardCap = 2048
)

type recostShard struct {
	mu sync.RWMutex
	m  map[recostKey]recostEntry
}

// recostCache memoizes Recost results per engine. Recost is deterministic
// in (plan, sv, statistics), so entries stay valid until the statistics
// store is rebuilt — the owner must flush on stats reload. The hit/miss
// counters are bumped by every cost-check recost on the serving path, so
// they are striped: a shared atomic pair here would put all cores back on
// the same two cache lines the shard locks just avoided.
type recostCache struct {
	shards [recostShards]recostShard
	hits   stripe.Int64
	misses stripe.Int64
}

func (c *recostCache) shardFor(k recostKey) *recostShard {
	// Mix the plan fingerprint into the shard choice (FNV-1a, allocation
	// free). Under per-template write domains many templates recost
	// distinct plan sets at similar vectors concurrently; sharding on the
	// vector hash alone funnels those templates onto the same shard locks,
	// while fingerprint mixing gives each (plan, vector) pair an
	// independent shard and keeps cross-template contention flat.
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.fp); i++ {
		h ^= uint64(k.fp[i])
		h *= 1099511628211
	}
	return &c.shards[(h^k.svh)&(recostShards-1)]
}

func svEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lookup reads one entry under the shard's read lock.
func (s *recostShard) lookup(k recostKey) (recostEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[k]
	return e, ok
}

// get returns the cached cost for (fp, sv), verifying the stored vector.
func (c *recostCache) get(k recostKey, sv []float64) (float64, bool) {
	e, ok := c.shardFor(k).lookup(k)
	if ok && svEqual(e.sv, sv) {
		c.hits.Add(1)
		return e.cost, true
	}
	c.misses.Add(1)
	return 0, false
}

// put stores a result, copying sv so callers may reuse their buffer.
//
//lint:allow hotalloc admission path after a computed recost, dominated by the recost itself
func (c *recostCache) put(k recostKey, sv []float64, cost float64) {
	s := c.shardFor(k)
	svCopy := append([]float64(nil), sv...)
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[recostKey]recostEntry, 64)
	} else if len(s.m) >= recostShardCap {
		clear(s.m)
	}
	s.m[k] = recostEntry{cost: cost, sv: svCopy}
	s.mu.Unlock()
}

// flush drops every entry; counters are preserved.
func (c *recostCache) flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}

func (c *recostCache) counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
