// Package rcupublish machine-checks the copy-on-write RCU publication
// discipline of the serving cache (internal/core/scr.go, docs/PERF.md):
//
//  1. Every mutation of master state — the fields publishLocked rebuilds
//     the snapshot from — must be post-dominated by a publishLocked()
//     call: on every path from the mutation to return, readers must gain
//     visibility of the change. Mutating helpers (addInstance, evictLFU)
//     are allowed as long as every call to them is itself followed by a
//     publish; the analyzer propagates this over the same-package call
//     graph.
//  2. Published snapshots are immutable. No store may go through a value
//     reachable from a published snapshot: a snapshot-pointer load, a
//     parameter of the snapshot type, or the result of a helper that
//     returns published state (e.g. snapshot()). Mutable side channels
//     are fields of sync/atomic types, whose updates are method calls,
//     not stores — those pass.
//  3. A reader operation loads the snapshot pointer exactly once and
//     passes it down. Two loads in one operation is a TOCTOU: a writer
//     may publish between them, and the operation acts on two different
//     cache states. Loads made on behalf of the writer path (functions
//     that themselves publish) do not count against their callers.
//  4. Coalesced publication (owners with a flushLocked method): the
//     publishLocked mark defers the snapshot rebuild to flushLocked, and
//     the domain's unlock method must flush on every path before
//     releasing the mutex — otherwise mutations marked mid-section stay
//     invisible to readers after the critical section ends. flushLocked
//     is deliberately NOT a publish point for rule 1: a flush without a
//     mark is a no-op, so only the mark proves the mutation will ever be
//     published.
//  5. Per-domain write discipline: master fields may only be stored
//     through the owning domain's receiver. A store that reaches another
//     domain's master state (a "cross-domain store") bypasses that
//     domain's mutex and publication protocol and is reported wherever
//     it appears.
//
// The analyzer is structural, not name-bound: any package type with a
// publishLocked method and an atomic.Pointer snapshot field is checked,
// which is what lets the fixture packages model the real SCR.
package rcupublish

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/lintutil"
	"repro/internal/lint/ssalite"
)

const (
	publishName = "publishLocked"
	// flushName is the deferred-rebuild half of coalesced publication:
	// publishLocked marks, flushLocked (when the owner has one) rebuilds
	// and stores the snapshot. unlockName is the critical-section exit
	// that must flush.
	flushName  = "flushLocked"
	unlockName = "unlock"
)

var Analyzer = &analysis.Analyzer{
	Name:     "rcupublish",
	Doc:      "check the RCU publication discipline: master mutations publish, published snapshots stay immutable, readers load the snapshot once",
	Requires: []*analysis.Analyzer{ssalite.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	lintutil.ReportAllowMisuse(pass)
	ssa := pass.ResultOf[ssalite.Analyzer].(*ssalite.SSA)
	for _, o := range findOwners(pass, ssa) {
		o.checkPublish()
		o.checkUnlockFlush()
		o.checkCrossDomain()
		o.checkEscape()
		o.checkSingleLoad()
	}
	return nil, nil
}

// owner is one RCU-published type: it has a publishLocked method, master
// fields that method rebuilds from, and (usually) an atomic.Pointer
// snapshot field.
type owner struct {
	pass    *analysis.Pass
	ssa     *ssalite.SSA
	typ     *types.Named
	publish *ssalite.Function
	// flush is the owner's flushLocked method when publication is
	// coalesced (publishLocked marks, flushLocked rebuilds); nil for
	// owners that publish eagerly.
	flush *ssalite.Function
	// methods are the owner's non-test methods, publish included.
	methods []*ssalite.Function
	byName  map[string]*ssalite.Function
	master  map[*types.Var]bool
	// snapTypes are the element types of the owner's atomic.Pointer
	// fields: the published snapshot type(s).
	snapTypes []types.Type
}

func findOwners(pass *analysis.Pass, ssa *ssalite.SSA) []*owner {
	var owners []*owner
	for _, fn := range ssa.Funcs {
		if fn.Decl == nil || fn.Name != publishName || fn.Recv == nil || fn.Incomplete {
			continue
		}
		if lintutil.InTestFile(pass, fn.Decl.Pos()) {
			continue
		}
		named := namedOf(fn.Recv.Type())
		if named == nil || structOf(named) == nil {
			continue
		}
		o := &owner{pass: pass, ssa: ssa, typ: named, publish: fn,
			byName: map[string]*ssalite.Function{}, master: map[*types.Var]bool{}}
		for _, m := range ssa.Funcs {
			if m.Decl == nil || m.Recv == nil || namedOf(m.Recv.Type()) != named {
				continue
			}
			if lintutil.InTestFile(pass, m.Decl.Pos()) {
				continue
			}
			o.methods = append(o.methods, m)
			o.byName[m.Name] = m
		}
		o.flush = o.byName[flushName]
		o.findMaster()
		o.findSnapTypes()
		owners = append(owners, o)
	}
	return owners
}

// findMaster collects the owner fields publishLocked (and, under
// coalescing, flushLocked — the half that actually rebuilds) reads: those
// are the master state the snapshot is rebuilt from. Fields of sync/atomic
// types are excluded — the snapshot pointer itself, counters — since they
// have their own publication semantics.
func (o *owner) findMaster() {
	st := structOf(o.typ)
	scan := func(fn *ssalite.Function) {
		fn.Instrs(func(in ssalite.Instruction) {
			fa, ok := in.(*ssalite.FieldAddr)
			if !ok || fa.Field == nil || !derivesFromRecv(fa.X, fn) {
				return
			}
			if !isStructField(st, fa.Field) || isAtomicType(fa.Field.Type()) {
				return
			}
			o.master[fa.Field] = true
		})
	}
	scan(o.publish)
	if o.flush != nil {
		scan(o.flush)
	}
}

func (o *owner) findSnapTypes() {
	st := structOf(o.typ)
	for i := 0; i < st.NumFields(); i++ {
		if elem := atomicPointerElem(st.Field(i).Type()); elem != nil {
			o.snapTypes = append(o.snapTypes, elem)
		}
	}
}

// ---- check 1: master mutations are post-dominated by publishLocked ----

type mutation struct {
	instr ssalite.Instruction
	desc  string
	// call marks a bubbled-up call site to a mutating helper.
	call bool
}

func (o *owner) checkPublish() {
	// Publishers: methods that publish on every path from entry to return
	// (publishLocked itself; manageCache via its deferred publish). A call
	// to a publisher counts as a publish point.
	publishers := map[*ssalite.Function]bool{o.publish: true}
	isPublishPoint := func(in ssalite.Instruction) bool {
		c, ok := in.(*ssalite.Call)
		if !ok {
			return false
		}
		if c.CalleeName() == publishName {
			return true
		}
		callee := o.byName[c.CalleeName()]
		return callee != nil && publishers[callee]
	}
	for changed := true; changed; {
		changed = false
		for _, m := range o.methods {
			if !publishers[m] && ssalite.MustReachFromEntry(m, isPublishPoint) {
				publishers[m] = true
				changed = true
			}
		}
	}

	// Direct mutation points, per function. Function literals are scanned
	// too: a goroutine or closure mutating master state owes a publish
	// just like a method body.
	funcs := o.mutationScanScope()
	unresolved := map[*ssalite.Function]map[ssalite.Instruction]mutation{}
	add := func(fn *ssalite.Function, mut mutation) {
		if !ssalite.MustReach(fn, mut.instr, isPublishPoint) {
			if unresolved[fn] == nil {
				unresolved[fn] = map[ssalite.Instruction]mutation{}
			}
			unresolved[fn][mut.instr] = mut
		}
	}
	for _, fn := range funcs {
		fn.Instrs(func(in ssalite.Instruction) {
			if root := o.mutatedMaster(in, fn); root != "" {
				add(fn, mutation{instr: in, desc: fmt.Sprintf("%s.%s", o.typ.Obj().Name(), root)})
			}
		})
	}

	// Bubble mutating-helper calls upward: a call to a function with
	// unresolved mutations is itself a mutation point of the caller.
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			fn.Instrs(func(in ssalite.Instruction) {
				c, ok := in.(*ssalite.Call)
				if !ok {
					return
				}
				callee := o.byName[c.CalleeName()]
				if callee == nil || callee == fn || len(unresolved[callee]) == 0 {
					return
				}
				if _, seen := unresolved[fn][in]; seen {
					return
				}
				before := len(unresolved[fn])
				add(fn, mutation{instr: in, desc: callee.Name, call: true})
				if len(unresolved[fn]) != before {
					changed = true
				}
			})
		}
	}

	// Report: at entry points (exported methods, uncalled functions) the
	// uncovered mutation surfaces; for called unexported helpers it has
	// already bubbled into every uncovered caller.
	callers := o.callerCount(funcs)
	for _, fn := range funcs {
		pts := unresolved[fn]
		if len(pts) == 0 {
			continue
		}
		if !ast.IsExported(fn.Name) && callers[fn] > 0 {
			continue
		}
		ordered := make([]mutation, 0, len(pts))
		for _, m := range pts {
			ordered = append(ordered, m)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].instr.Pos() < ordered[j].instr.Pos() })
		for _, m := range ordered {
			if m.call {
				lintutil.Report(o.pass, m.instr.Pos(),
					"call to %s mutates %s master state without a publishLocked on every following path (readers keep serving the stale snapshot)",
					m.desc, o.typ.Obj().Name())
			} else {
				lintutil.Report(o.pass, m.instr.Pos(),
					"mutation of master state %s is not followed by publishLocked on every path to return (readers keep serving the stale snapshot)",
					m.desc)
			}
		}
	}
}

// mutationScanScope is every non-test function of the package that can
// mutate this owner's master state: its methods plus function literals.
// flushLocked is excluded like publishLocked — its bookkeeping stores
// (clearing the structural flag) are part of publication itself.
func (o *owner) mutationScanScope() []*ssalite.Function {
	var out []*ssalite.Function
	for _, fn := range o.ssa.Funcs {
		if fn == o.publish || fn == o.flush || fn.Incomplete || len(fn.Blocks) == 0 {
			continue
		}
		pos := funcPos(fn)
		if pos.IsValid() && lintutil.InTestFile(o.pass, pos) {
			continue
		}
		switch {
		case fn.Decl != nil && fn.Recv != nil && namedOf(fn.Recv.Type()) == o.typ:
			out = append(out, fn)
		case fn.Lit != nil:
			out = append(out, fn)
		}
	}
	return out
}

func (o *owner) callerCount(funcs []*ssalite.Function) map[*ssalite.Function]int {
	n := map[*ssalite.Function]int{}
	for _, fn := range funcs {
		fn.Instrs(func(in ssalite.Instruction) {
			if c, ok := in.(*ssalite.Call); ok {
				if callee := o.byName[c.CalleeName()]; callee != nil && callee != fn {
					n[callee]++
				}
			}
		})
	}
	return n
}

// mutatedMaster reports whether in mutates one of the owner's master
// fields (directly, through an element, or via map update/delete),
// returning the rooting field's name ("" when it does not).
func (o *owner) mutatedMaster(in ssalite.Instruction, fn *ssalite.Function) string {
	var addr ssalite.Value
	switch in := in.(type) {
	case *ssalite.Store:
		addr = in.Addr
	case *ssalite.MapUpdate:
		addr = in.Map
	case *ssalite.MapDelete:
		addr = in.Map
	default:
		return ""
	}
	if f := o.masterRoot(addr, fn, 0); f != nil {
		return f.Name()
	}
	return ""
}

// masterRoot walks an address (or map value) back to the receiver field
// it roots in, if that field is master state.
func (o *owner) masterRoot(v ssalite.Value, fn *ssalite.Function, depth int) *types.Var {
	if depth > 32 {
		return nil
	}
	switch v := v.(type) {
	case *ssalite.FieldAddr:
		if v.Field != nil && o.master[v.Field] && derivesFromRecv(v.X, fn) {
			return v.Field
		}
		return o.masterRoot(v.X, fn, depth+1)
	case *ssalite.IndexAddr:
		return o.masterRoot(v.X, fn, depth+1)
	case *ssalite.Load:
		return o.masterRoot(v.Addr, fn, depth+1)
	case *ssalite.Slice:
		return o.masterRoot(v.X, fn, depth+1)
	case *ssalite.Append:
		return o.masterRoot(v.Slice, fn, depth+1)
	}
	return nil
}

// ---- check 4: unlock must flush pending publications ----

// checkUnlockFlush enforces the coalescing contract: for an owner whose
// publication is deferred (it has a flushLocked method), the unlock method
// — the end of every writer critical section — must call flushLocked on
// every path from entry to return. Without it, mutations whose marks were
// coalesced mid-section would outlive the critical section unpublished,
// breaking the "readers lag at most one mutation batch" bound.
func (o *owner) checkUnlockFlush() {
	if o.flush == nil {
		return
	}
	u := o.byName[unlockName]
	if u == nil {
		return
	}
	isFlushPoint := func(in ssalite.Instruction) bool {
		c, ok := in.(*ssalite.Call)
		return ok && (c.CalleeName() == flushName || c.CalleeName() == publishName)
	}
	if !ssalite.MustReachFromEntry(u, isFlushPoint) {
		lintutil.Report(o.pass, u.Decl.Pos(),
			"%s.unlock releases the domain mutex without calling flushLocked on every path: coalesced publication marks would outlive the critical section unpublished",
			o.typ.Obj().Name())
	}
}

// ---- check 5: no cross-domain stores ----

// checkCrossDomain reports stores into an owner's master state that do not
// go through that domain's own receiver: a method of another type (or a
// plain function) reaching into someDomain.instances bypasses the domain
// mutex/publication discipline even if the enclosing code holds some other
// lock. Function literals are skipped — they have no receiver, so the
// derivation test cannot distinguish a captured owner receiver from a
// foreign domain; their mutations are still covered by rule 1's scan.
func (o *owner) checkCrossDomain() {
	for _, fn := range o.ssa.Funcs {
		if fn.Decl == nil || fn.Incomplete || fn == o.publish || fn == o.flush {
			continue
		}
		if lintutil.InTestFile(o.pass, fn.Decl.Pos()) {
			continue
		}
		fn.Instrs(func(in ssalite.Instruction) {
			var addr ssalite.Value
			switch in := in.(type) {
			case *ssalite.Store:
				addr = in.Addr
			case *ssalite.MapUpdate:
				addr = in.Map
			case *ssalite.MapDelete:
				addr = in.Map
			default:
				return
			}
			if f := o.foreignMasterRoot(addr, fn, 0); f != nil {
				lintutil.Report(o.pass, in.Pos(),
					"cross-domain store to %s.%s: master state may only be mutated through its own domain's methods (the store bypasses that domain's mutex and publication)",
					o.typ.Obj().Name(), f.Name())
			}
		})
	}
}

// foreignMasterRoot walks an address (or map value) back to a master field
// access and returns the field when the access does NOT derive from fn's
// receiver — i.e. it reaches into a foreign domain.
func (o *owner) foreignMasterRoot(v ssalite.Value, fn *ssalite.Function, depth int) *types.Var {
	if depth > 32 {
		return nil
	}
	switch v := v.(type) {
	case *ssalite.FieldAddr:
		if v.Field != nil && o.master[v.Field] {
			if derivesFromRecv(v.X, fn) {
				return nil
			}
			return v.Field
		}
		return o.foreignMasterRoot(v.X, fn, depth+1)
	case *ssalite.IndexAddr:
		return o.foreignMasterRoot(v.X, fn, depth+1)
	case *ssalite.Load:
		return o.foreignMasterRoot(v.Addr, fn, depth+1)
	case *ssalite.Slice:
		return o.foreignMasterRoot(v.X, fn, depth+1)
	case *ssalite.Append:
		return o.foreignMasterRoot(v.Slice, fn, depth+1)
	}
	return nil
}

// ---- check 2: published snapshots are immutable ----

func (o *owner) checkEscape() {
	if len(o.snapTypes) == 0 {
		return
	}

	// Interprocedural summary: which package functions return a value
	// derived from published state (snapshot(), snapshotPlans(), ...)?
	returnsPublished := map[*ssalite.Function]bool{}
	for changed := true; changed; {
		changed = false
		for _, fn := range o.ssa.Funcs {
			if returnsPublished[fn] || fn.Incomplete {
				continue
			}
			tainted := o.taint(fn, returnsPublished, false)
			leak := false
			fn.Instrs(func(in ssalite.Instruction) {
				if r, ok := in.(*ssalite.Return); ok {
					for _, res := range r.Results {
						if tainted[res] {
							leak = true
						}
					}
				}
			})
			if leak {
				returnsPublished[fn] = true
				changed = true
			}
		}
	}

	for _, fn := range o.ssa.Funcs {
		if fn.Incomplete {
			continue
		}
		pos := funcPos(fn)
		if pos.IsValid() && lintutil.InTestFile(o.pass, pos) {
			continue
		}
		tainted := o.taint(fn, returnsPublished, true)
		fn.Instrs(func(in ssalite.Instruction) {
			var addr ssalite.Value
			switch in := in.(type) {
			case *ssalite.Store:
				addr = in.Addr
			case *ssalite.MapUpdate:
				if tainted[in.Map] {
					o.reportEscape(in.Pos())
				}
				return
			case *ssalite.MapDelete:
				if tainted[in.Map] {
					o.reportEscape(in.Pos())
				}
				return
			default:
				return
			}
			switch a := addr.(type) {
			case *ssalite.FieldAddr:
				if tainted[a.X] || tainted[a] {
					o.reportEscape(in.Pos())
				}
			case *ssalite.IndexAddr:
				if tainted[a.X] || tainted[a] {
					o.reportEscape(in.Pos())
				}
			case *ssalite.Load: // *p = v
				if tainted[a] {
					o.reportEscape(in.Pos())
				}
			}
		})
	}
}

func (o *owner) reportEscape(pos token.Pos) {
	lintutil.Report(o.pass, pos,
		"store through a published %s snapshot (published state is immutable: copy, rebuild and publishLocked instead)",
		o.typ.Obj().Name())
}

// taint runs a flow-insensitive taint pass over fn. Sources: snapshot
// pointer loads, calls to functions known to return published state, and
// (when taintParams is set) parameters of the snapshot type.
func (o *owner) taint(fn *ssalite.Function, returnsPublished map[*ssalite.Function]bool, taintParams bool) map[ssalite.Value]bool {
	vals := map[ssalite.Value]bool{}
	cells := map[*ssalite.Cell]bool{}
	if taintParams {
		for _, c := range fn.Cells() {
			if c.IsParam && o.isSnapType(c.Type()) {
				cells[c] = true
			}
		}
	}
	isSource := func(v ssalite.Value) bool {
		c, ok := v.(*ssalite.Call)
		if !ok {
			return false
		}
		if o.isSnapLoad(c) {
			return true
		}
		if c.Callee != nil {
			if callee, ok := o.ssa.DeclFunc[c.Callee]; ok && returnsPublished[callee] {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		mark := func(v ssalite.Value) {
			if v != nil && !vals[v] {
				vals[v] = true
				changed = true
			}
		}
		fn.Instrs(func(in ssalite.Instruction) {
			v, isVal := in.(ssalite.Value)
			if isVal && !vals[v] && isSource(v) {
				mark(v)
			}
			switch in := in.(type) {
			case *ssalite.Load:
				if c, ok := in.Addr.(*ssalite.Cell); ok && cells[c] {
					mark(in)
				} else if vals[in.Addr] {
					mark(in)
				}
			case *ssalite.Store:
				if c, ok := in.Addr.(*ssalite.Cell); ok && vals[in.Val] && !cells[c] {
					cells[c] = true
					changed = true
				}
			case *ssalite.FieldAddr, *ssalite.IndexAddr, *ssalite.Slice,
				*ssalite.Extract, *ssalite.RangeElem, *ssalite.Convert,
				*ssalite.TypeAssert, *ssalite.UnOp, *ssalite.Append:
				for _, op := range in.Operands() {
					if op != nil && vals[op] {
						mark(in.(ssalite.Value))
					}
				}
			}
		})
		// Opaque values are not instructions; they appear only as
		// operands, so propagate through them where referenced.
		fn.Instrs(func(in ssalite.Instruction) {
			for _, op := range in.Operands() {
				if oq, ok := op.(*ssalite.Opaque); ok && !vals[oq] {
					for _, inner := range oq.Ops {
						if inner != nil && vals[inner] {
							mark(oq)
						}
					}
				}
			}
		})
	}
	return vals
}

// isSnapLoad reports whether c is a .Load() on an atomic.Pointer holding
// one of the owner's snapshot types.
func (o *owner) isSnapLoad(c *ssalite.Call) bool {
	if c.Method != "Load" || c.Recv == nil {
		return false
	}
	elem := atomicPointerElem(c.Recv.Type())
	if elem == nil {
		return false
	}
	return o.isSnapType(elem)
}

func (o *owner) isSnapType(t types.Type) bool {
	t = stripRefs(t)
	if t == nil {
		return false
	}
	for _, s := range o.snapTypes {
		if types.Identical(t, s) || types.Identical(types.NewPointer(s), t) {
			return true
		}
	}
	return false
}

// ---- check 3: the snapshot pointer is loaded once per operation ----

func (o *owner) checkSingleLoad() {
	if len(o.snapTypes) == 0 {
		return
	}
	// Writer-side functions publish (directly or transitively); their
	// snapshot loads serve the version bump, not a read decision, and do
	// not count against callers. Under coalescing, flushLocked is the
	// rebuild half of publication and is writer-side too.
	writerSide := func(fn *ssalite.Function) bool {
		if fn == o.publish || (o.flush != nil && fn == o.flush) {
			return true
		}
		found := false
		fn.Instrs(func(in ssalite.Instruction) {
			if c, ok := in.(*ssalite.Call); ok && c.CalleeName() == publishName {
				found = true
			}
		})
		return found
	}

	type summary struct {
		total int
		sites []ssalite.Instruction
	}
	memo := map[*ssalite.Function]*summary{}
	visiting := map[*ssalite.Function]bool{}
	var analyze func(fn *ssalite.Function) *summary
	analyze = func(fn *ssalite.Function) *summary {
		if s, ok := memo[fn]; ok {
			return s
		}
		if visiting[fn] {
			return &summary{}
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		s := &summary{}
		fn.Instrs(func(in ssalite.Instruction) {
			c, ok := in.(*ssalite.Call)
			if !ok {
				return
			}
			if o.isSnapLoad(c) {
				s.total++
				s.sites = append(s.sites, in)
				return
			}
			// Resolve any same-package declared callee (not just the
			// owner's methods): with per-template domains the read path
			// crosses type boundaries — SCR methods call domain and
			// directory helpers — and a load hidden behind any of them
			// still counts toward the caller's operation.
			var callee *ssalite.Function
			if c.Callee != nil {
				callee = o.ssa.DeclFunc[c.Callee]
			}
			if callee == nil || callee == fn || writerSide(callee) {
				return
			}
			if sub := analyze(callee); sub.total > 0 {
				s.total += sub.total
				s.sites = append(s.sites, in)
			}
		})
		memo[fn] = s
		return s
	}

	for _, fn := range o.ssa.Funcs {
		if fn.Incomplete || writerSide(fn) {
			continue
		}
		pos := funcPos(fn)
		if pos.IsValid() && lintutil.InTestFile(o.pass, pos) {
			continue
		}
		s := analyze(fn)
		if s.total >= 2 && len(s.sites) >= 2 {
			lintutil.Report(o.pass, s.sites[1].Pos(),
				"snapshot pointer loaded %d times in one operation (TOCTOU: a writer may publish between the loads); load it once and pass it down",
				s.total)
		}
	}
}

// ---- shared helpers ----

func funcPos(fn *ssalite.Function) token.Pos {
	switch {
	case fn.Decl != nil:
		return fn.Decl.Pos()
	case fn.Lit != nil:
		return fn.Lit.Pos()
	}
	return token.NoPos
}

func derivesFromRecv(v ssalite.Value, fn *ssalite.Function) bool {
	if fn.Recv == nil {
		return false
	}
	for depth := 0; v != nil && depth < 32; depth++ {
		switch vv := v.(type) {
		case *ssalite.Cell:
			return vv == fn.Recv
		case *ssalite.Load:
			v = vv.Addr
		default:
			return false
		}
	}
	return false
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func structOf(n *types.Named) *types.Struct {
	if n == nil {
		return nil
	}
	s, _ := n.Underlying().(*types.Struct)
	return s
}

func isStructField(st *types.Struct, f *types.Var) bool {
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == f {
			return true
		}
	}
	return false
}

func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicPointerElem returns T for sync/atomic.Pointer[T], else nil.
func atomicPointerElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || !isAtomicType(n) || n.Obj().Name() != "Pointer" {
		return nil
	}
	args := n.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	return args.At(0)
}

// stripRefs unwraps pointers, slices and arrays down to the element type.
func stripRefs(t types.Type) types.Type {
	for depth := 0; t != nil && depth < 8; depth++ {
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return t
		}
	}
	return t
}
