// Package rcuseed seeds a realistic regression for the rcupublish
// analyzer: a mini-SCR whose manage path lost its deferred publishLocked
// (exactly the defect class the analyzer exists to catch), so every
// mutation it performs — directly and through evictLFU — goes unpublished
// and readers would keep serving the stale snapshot forever.
package rcuseed

import (
	"sync"
	"sync/atomic"
)

type planEntry struct {
	fp   string
	hits int
}

type snapshot struct {
	plans map[string]*planEntry
	order []*planEntry
}

type SCR struct {
	mu    sync.Mutex
	plans map[string]*planEntry
	order []*planEntry
	snap  atomic.Pointer[snapshot]
}

func (s *SCR) publishLocked() {
	ps := make(map[string]*planEntry, len(s.plans))
	for k, v := range s.plans {
		ps[k] = v
	}
	os := make([]*planEntry, len(s.order))
	copy(os, s.order)
	s.snap.Store(&snapshot{plans: ps, order: os})
}

// evictLFU mutates master state and has never published itself; with the
// deferred publish gone from ManageCache no path covers it anymore. The
// debt is reported at the call site, not here, because this helper is
// unexported and has callers.
func (s *SCR) evictLFU() {
	kept := s.order[:0]
	for _, e := range s.order {
		if e.hits > 0 {
			kept = append(kept, e)
		} else {
			delete(s.plans, e.fp)
		}
	}
	s.order = kept
}

// ManageCache lost its `defer s.publishLocked()` — the seeded bug.
func (s *SCR) ManageCache(e *planEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plans[e.fp] = e            // want `mutation of master state SCR\.plans is not followed by publishLocked`
	s.order = append(s.order, e) // want `mutation of master state SCR\.order is not followed by publishLocked`
	if len(s.order) > 8 {
		s.evictLFU() // want `call to evictLFU mutates SCR master state without a publishLocked`
	}
}
