// Package rcu models the SCR's RCU publication discipline for the
// rcupublish analyzer: master state guarded by a writer mutex, rebuilt
// into an immutable snapshot by publishLocked and published through an
// atomic pointer that readers load exactly once per operation.
package rcu

import (
	"sync"
	"sync/atomic"
)

type entry struct {
	key  string
	cost float64
}

type snapshot struct {
	entries []*entry
	index   map[string]*entry
	version uint64
}

type Cache struct {
	mu      sync.Mutex
	entries []*entry
	index   map[string]*entry
	snap    atomic.Pointer[snapshot]
}

func New() *Cache {
	c := &Cache{index: map[string]*entry{}}
	c.snap.Store(&snapshot{index: map[string]*entry{}})
	return c
}

// publishLocked rebuilds the immutable snapshot from the master state.
// The caller holds mu. The fields read here (entries, index) are what the
// analyzer learns to treat as master state.
func (c *Cache) publishLocked() {
	es := make([]*entry, len(c.entries))
	copy(es, c.entries)
	idx := make(map[string]*entry, len(c.index))
	for k, v := range c.index {
		idx[k] = v
	}
	c.snap.Store(&snapshot{entries: es, index: idx, version: c.snap.Load().version + 1})
}

// Add mutates and republishes on every path: compliant.
func (c *Cache) Add(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = append(c.entries, e)
	c.index[e.key] = e
	c.publishLocked()
}

// Evict publishes via a deferred publishLocked: compliant.
func (c *Cache) Evict(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.publishLocked()
	delete(c.index, key)
}

// manage publishes unconditionally through its entry-block defer, which
// makes it a publisher: a call to it counts as a publish point.
func (c *Cache) manage() {
	defer c.publishLocked()
	if len(c.entries) > cap(c.entries)/2 {
		c.entries = c.entries[:0]
	}
}

// Trim mutates, then publishes through the manage publisher: compliant.
func (c *Cache) Trim(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = c.entries[:n]
	c.manage()
}

// Leak mutates, but the early return path skips the publish.
func (c *Cache) Leak(e *entry, fast bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = append(c.entries, e) // want `mutation of master state Cache\.entries is not followed by publishLocked`
	if fast {
		return
	}
	c.publishLocked()
}

// Drop never publishes after the map delete.
func (c *Cache) Drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.index, key) // want `mutation of master state Cache\.index is not followed by publishLocked`
}

// addLocked mutates without publishing; its callers owe the publish, so
// nothing is reported here.
func (c *Cache) addLocked(e *entry) {
	c.entries = append(c.entries, e)
	c.index[e.key] = e
}

// Covered pairs the mutating helper with a publish: compliant.
func (c *Cache) Covered(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(e)
	c.publishLocked()
}

// Uncovered calls the mutating helper and forgets the publish; the
// helper's debt surfaces at this call site.
func (c *Cache) Uncovered(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(e) // want `call to addLocked mutates Cache master state without a publishLocked`
}

// Get is the read path: one load, reads only. Compliant.
func (c *Cache) Get(key string) *entry {
	return c.snap.Load().index[key]
}

// MutateSnap writes through the published snapshot: copy-on-write says
// published state is immutable.
func (c *Cache) MutateSnap(key string) {
	s := c.snap.Load()
	s.version = 0      // want `store through a published Cache snapshot`
	s.entries[0] = nil // want `store through a published Cache snapshot`
	s.index[key] = nil // want `store through a published Cache snapshot`
}

// scrub receives the snapshot type as a parameter; a write through it is
// still a write into published state.
func scrub(s *snapshot) {
	s.version = 0 // want `store through a published Cache snapshot`
}

// view returns published state, so writes through its result are caught
// interprocedurally.
func (c *Cache) view() *snapshot { return c.snap.Load() }

// Indirect reaches the snapshot through the view helper.
func (c *Cache) Indirect() {
	s := c.view()
	s.version = 1 // want `store through a published Cache snapshot`
}

// Double loads the snapshot pointer twice in one operation: a writer may
// publish between the loads and the two reads disagree.
func (c *Cache) Double(key string) bool {
	n := len(c.snap.Load().entries)
	_, ok := c.snap.Load().index[key] // want `snapshot pointer loaded 2 times in one operation`
	return ok && n > 0
}

// Mixed double-loads transitively: once directly, once through Get.
func (c *Cache) Mixed(key string) *entry {
	if c.snap.Load().version == 0 {
		return nil
	}
	return c.Get(key) // want `snapshot pointer loaded 2 times in one operation`
}

// Probe re-checks the version after the read on purpose: the second load
// is an intentional second-chance check, recorded as such.
func (c *Cache) Probe(key string) *entry {
	s := c.snap.Load()
	e := s.index[key]
	if c.snap.Load().version != s.version { //lint:allow rcupublish second-chance version re-check is intentional
		return nil
	}
	return e
}

// Resort is writer-side: it publishes, so the load inside publishLocked
// does not count against it.
func (c *Cache) Resort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.publishLocked()
}

var _ = scrub
