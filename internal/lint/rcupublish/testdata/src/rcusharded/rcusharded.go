// Package rcusharded seeds regressions for the sharded, coalescing RCU
// write path: a mini write-domain whose publishLocked only marks and
// whose flushLocked rebuilds. Three defect classes are re-introduced on
// purpose:
//
//   - a domain helper that mutates master state read only by flushLocked
//     (not publishLocked) and forgets its publication mark — catchable
//     only because the analyzer learns master state from BOTH halves of
//     coalesced publication;
//   - an unlock that releases the mutex without flushing, so coalesced
//     marks outlive the critical section unpublished;
//   - a method of another type storing straight into a foreign domain's
//     master state, bypassing its mutex and publication.
package rcusharded

import (
	"sync"
	"sync/atomic"
)

type entry struct {
	key  string
	cost float64
}

type snapshot struct {
	entries []*entry
	version uint64
}

type domain struct {
	mu      sync.Mutex
	entries []*entry
	dirty   bool
	pending atomic.Int64
	snap    atomic.Pointer[snapshot]
}

// publishLocked is the coalescing mark: it defers the rebuild to
// flushLocked.
func (d *domain) publishLocked() {
	if d.pending.Add(1) >= 8 {
		d.flushLocked()
	}
}

// flushLocked rebuilds the snapshot from the master state — entries and
// the dirty flag are what the analyzer must learn as master here, since
// publishLocked itself reads none of them.
func (d *domain) flushLocked() {
	if d.pending.Swap(0) == 0 {
		return
	}
	es := make([]*entry, len(d.entries))
	copy(es, d.entries)
	v := uint64(1)
	if prev := d.snap.Load(); prev != nil {
		v = prev.version + 1
	}
	d.dirty = false
	d.snap.Store(&snapshot{entries: es, version: v})
}

// unlock releases the mutex but LOST its flushLocked call — the seeded
// coalescing bug: marks accumulated mid-section never publish.
func (d *domain) unlock() { // want `domain\.unlock releases the domain mutex without calling flushLocked`
	d.mu.Unlock()
}

// Add marks its mutation correctly; the broken unlock is reported at the
// unlock itself, not here.
func (d *domain) Add(e *entry) {
	d.mu.Lock()
	defer d.unlock()
	d.entries = append(d.entries, e)
	d.dirty = true
	d.publishLocked()
}

// Drop mutates master state flushLocked (not publishLocked) reads and
// forgets the publication mark entirely.
func (d *domain) Drop(n int) {
	d.mu.Lock()
	defer d.unlock()
	d.entries = d.entries[:n] // want `mutation of master state domain\.entries is not followed by publishLocked`
	d.dirty = true            // want `mutation of master state domain\.dirty is not followed by publishLocked`
}

// registry maps names to domains; its methods must never reach into a
// domain's master state directly.
type registry struct {
	domains map[string]*domain
}

// Purge is the seeded cross-domain store: it empties another domain's
// entry list without holding that domain's mutex or publishing.
func (r *registry) Purge(name string) {
	d := r.domains[name]
	d.entries = nil // want `cross-domain store to domain\.entries`
	d.dirty = true  // want `cross-domain store to domain\.dirty`
}
