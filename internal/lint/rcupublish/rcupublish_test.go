package rcupublish_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/rcupublish"
)

func TestRCUPublish(t *testing.T) {
	linttest.Run(t, rcupublish.Analyzer, "rcu")
}

// TestSeededRegression proves the analyzer catches the defect class it
// was built for: a manageCache-shaped method whose deferred publishLocked
// was removed.
func TestSeededRegression(t *testing.T) {
	linttest.Run(t, rcupublish.Analyzer, "rcuseed")
}

// TestSeededShardedRegression proves the coalescing-era checks catch their
// defect classes: a missed publication mark on state only flushLocked
// reads, an unlock that forgets to flush, and a cross-domain store that
// bypasses another domain's mutex and publication.
func TestSeededShardedRegression(t *testing.T) {
	linttest.Run(t, rcupublish.Analyzer, "rcusharded")
}
