package ssalite_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"repro/internal/lint/ssalite"
)

// build typechecks src (which must not import anything) and runs the
// inspect → ctrlflow → ssalite analyzer chain over it.
func build(t *testing.T, src string) *ssalite.SSA {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	results := map[*analysis.Analyzer]any{}
	for _, a := range []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer, ssalite.Analyzer} {
		resultOf := map[*analysis.Analyzer]any{}
		for _, req := range a.Requires {
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:          a,
			Fset:              fset,
			Files:             []*ast.File{f},
			Pkg:               pkg,
			TypesInfo:         info,
			TypesSizes:        types.SizesFor("gc", "amd64"),
			ResultOf:          resultOf,
			Report:            func(analysis.Diagnostic) {},
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		results[a] = res
	}
	return results[ssalite.Analyzer].(*ssalite.SSA)
}

func fn(t *testing.T, s *ssalite.SSA, name string) *ssalite.Function {
	t.Helper()
	for _, f := range s.Funcs {
		if f.Name == name {
			if f.Incomplete {
				t.Fatalf("function %s marked Incomplete", name)
			}
			return f
		}
	}
	t.Fatalf("function %s not found; have %v", name, s.Funcs)
	return nil
}

func countInstrs(f *ssalite.Function, match func(ssalite.Instruction) bool) int {
	n := 0
	f.Instrs(func(in ssalite.Instruction) {
		if match(in) {
			n++
		}
	})
	return n
}

func callsTo(f *ssalite.Function, name string) int {
	return countInstrs(f, func(in ssalite.Instruction) bool {
		c, ok := in.(*ssalite.Call)
		return ok && c.CalleeName() == name
	})
}

const srcBasic = `package p

type S struct {
	x    int
	m    map[string]int
	list []int
}

func (s *S) publish() {}

func use(int) {}

func (s *S) Mutate(v int) {
	s.x = v
	s.m["k"] = v
	s.list = append(s.list, v)
	s.publish()
}
`

func TestBasicInstructions(t *testing.T) {
	ssa := build(t, srcBasic)
	f := fn(t, ssa, "Mutate")

	if got := countInstrs(f, func(in ssalite.Instruction) bool {
		st, ok := in.(*ssalite.Store)
		if !ok {
			return false
		}
		fa, ok := st.Addr.(*ssalite.FieldAddr)
		return ok && fa.Field != nil && fa.Field.Name() == "x"
	}); got != 1 {
		t.Errorf("stores to .x = %d, want 1", got)
	}
	if got := countInstrs(f, func(in ssalite.Instruction) bool {
		_, ok := in.(*ssalite.MapUpdate)
		return ok
	}); got != 1 {
		t.Errorf("map updates = %d, want 1", got)
	}
	if got := countInstrs(f, func(in ssalite.Instruction) bool {
		_, ok := in.(*ssalite.Append)
		return ok
	}); got != 1 {
		t.Errorf("appends = %d, want 1", got)
	}
	if got := callsTo(f, "publish"); got != 1 {
		t.Errorf("calls to publish = %d, want 1", got)
	}
}

const srcMemo = `package p

func producer() []int { return nil }
func use(int)         {}

func Consume() {
	for _, v := range producer() {
		use(v)
	}
}
`

// cfg lists the range operand both as a standalone node and inside the
// statement; without per-expression memoization producer() would appear
// as two Call instructions and site-counting analyzers would overcount.
func TestRangeOperandTranslatedOnce(t *testing.T) {
	ssa := build(t, srcMemo)
	f := fn(t, ssa, "Consume")
	if got := callsTo(f, "producer"); got != 1 {
		t.Fatalf("calls to producer = %d, want 1 (memoization broken)", got)
	}
	// The range value must flow from the ranged operand.
	if got := countInstrs(f, func(in ssalite.Instruction) bool {
		_, ok := in.(*ssalite.RangeElem)
		return ok
	}); got != 1 {
		t.Fatalf("range elems = %d, want 1", got)
	}
}

const srcMustReach = `package p

type S struct{ x, y int }

func (s *S) publish() {}

func (s *S) Good(v int) {
	s.x = v
	s.publish()
}

func (s *S) Deferred(v int) {
	defer s.publish()
	if v > 0 {
		return
	}
	s.x = v
}

func (s *S) Leaky(v int) {
	s.x = v
	if v > 0 {
		return
	}
	s.publish()
}

func (s *S) PanicExit(v int) {
	s.x = v
	if v < 0 {
		panic("bad")
	}
	s.publish()
}
`

func firstStore(t *testing.T, f *ssalite.Function) ssalite.Instruction {
	t.Helper()
	var found ssalite.Instruction
	f.Instrs(func(in ssalite.Instruction) {
		if _, ok := in.(*ssalite.Store); ok && found == nil {
			if fa, ok := in.(*ssalite.Store).Addr.(*ssalite.FieldAddr); ok && fa.Field.Name() == "x" {
				found = in
			}
		}
	})
	if found == nil {
		t.Fatal("no store to .x found")
	}
	return found
}

func TestMustReach(t *testing.T) {
	ssa := build(t, srcMustReach)
	isPublish := func(in ssalite.Instruction) bool {
		c, ok := in.(*ssalite.Call)
		return ok && c.CalleeName() == "publish"
	}
	for _, tc := range []struct {
		fn   string
		want bool
	}{
		{"Good", true},
		{"Deferred", true}, // entry-block defer runs at every exit
		{"Leaky", false},   // early return skips publish
		{"PanicExit", true},
	} {
		f := fn(t, ssa, tc.fn)
		if got := ssalite.MustReach(f, firstStore(t, f), isPublish); got != tc.want {
			t.Errorf("MustReach(%s) = %v, want %v", tc.fn, got, tc.want)
		}
	}

	// MustReachFromEntry: Deferred publishes unconditionally, Leaky does not.
	if !ssalite.MustReachFromEntry(fn(t, ssa, "Deferred"), isPublish) {
		t.Error("MustReachFromEntry(Deferred) = false, want true")
	}
	if ssalite.MustReachFromEntry(fn(t, ssa, "Leaky"), isPublish) {
		t.Error("MustReachFromEntry(Leaky) = true, want false")
	}
	if !ssalite.MustReachFromEntry(fn(t, ssa, "Good"), isPublish) {
		t.Error("MustReachFromEntry(Good) = false, want true")
	}
}

const srcClosure = `package p

func sink(func()) {}

func Outer() {
	captured := 0
	lit := func() {
		captured = 1
	}
	lit()
	sink(func() { captured = 2 })
	_ = captured
}
`

func TestClosureCellsShared(t *testing.T) {
	ssa := build(t, srcClosure)
	outer := fn(t, ssa, "Outer")
	lit1 := fn(t, ssa, "Outer$lit1")
	lit2 := fn(t, ssa, "Outer$lit2")

	var outerCell *ssalite.Cell
	for _, c := range outer.Cells() {
		if c.Obj != nil && c.Obj.Name() == "captured" {
			outerCell = c
		}
	}
	if outerCell == nil {
		t.Fatal("no cell for captured in Outer")
	}
	for _, lit := range []*ssalite.Function{lit1, lit2} {
		n := countInstrs(lit, func(in ssalite.Instruction) bool {
			st, ok := in.(*ssalite.Store)
			return ok && st.Addr == ssalite.Value(outerCell)
		})
		if n != 1 {
			t.Errorf("%s: stores through Outer's captured cell = %d, want 1", lit.Name, n)
		}
	}
}

const srcDefensive = `package p

type I interface{ M() int }

type T struct{ v int }

func (t T) M() int { return t.v }

func Weird(i I, ch chan int, arr [4]int) (out int) {
	defer func() { out++ }()
	select {
	case v := <-ch:
		out += v
	case ch <- 1:
	default:
	}
	switch x := i.(type) {
	case T:
		out += x.M()
	default:
	}
	m := map[[2]int]*T{}
	m[[2]int{1, 2}] = &T{v: arr[out%4]}
	for k, v := range m {
		_ = k
		out += v.v
	}
	goto done
done:
	return out
}
`

// The builder must translate arbitrary Go without panicking and without
// marking functions Incomplete; unmodeled constructs degrade to Opaque.
func TestDefensiveTranslation(t *testing.T) {
	ssa := build(t, srcDefensive)
	f := fn(t, ssa, "Weird")
	if len(f.Blocks) == 0 {
		t.Fatal("Weird has no blocks")
	}
}

const srcTuple = `package p

func two() (int, string) { return 0, "" }

func Use() (int, string) {
	a, b := two()
	return a, b
}
`

func TestTupleExtract(t *testing.T) {
	ssa := build(t, srcTuple)
	f := fn(t, ssa, "Use")
	if got := countInstrs(f, func(in ssalite.Instruction) bool {
		_, ok := in.(*ssalite.Extract)
		return ok
	}); got != 2 {
		t.Errorf("extracts = %d, want 2", got)
	}
	if got := callsTo(f, "two"); got != 1 {
		t.Errorf("calls to two = %d, want 1", got)
	}
}
