package ssalite

// This file implements the must-reach (post-domination) query the
// rcupublish analyzer is built on: "does every path from this instruction
// to a returning exit pass an instruction satisfying pred?".

// MustReach reports whether every live path from just after instruction
// `from` to a *returning* exit of fn passes an instruction satisfying pred.
//
// Two refinements make the query match how the repo writes code:
//   - A deferred call in the entry block that satisfies pred counts
//     unconditionally: it is armed before any instruction of interest and
//     runs at every exit (the `defer s.publishLocked()` idiom).
//   - Exits that cannot return — dead blocks, and blocks ending in panic
//     or a fatal/exit call — vacuously satisfy the query: no caller
//     observes state through them.
//
// Cycles are handled by a greatest fixpoint, so an infinite loop (no path
// to exit) also vacuously satisfies the query.
func MustReach(fn *Function, from Instruction, pred func(Instruction) bool) bool {
	if fn == nil || fn.Incomplete || len(fn.Blocks) == 0 {
		return false
	}
	if entryDeferSatisfies(fn, pred) {
		return true
	}
	b := from.Block()
	if b == nil {
		return false
	}
	for i := from.index() + 1; i < len(b.Instrs); i++ {
		if pred(b.Instrs[i]) {
			return true
		}
	}
	ok := mustReachSets(fn, pred)
	if len(b.Succs) == 0 {
		return nonReturningExit(b)
	}
	for _, s := range b.Succs {
		if !ok[s] {
			return false
		}
	}
	return true
}

// MustReachFromEntry reports whether every live path from function entry
// to a returning exit passes an instruction satisfying pred — i.e. whether
// fn unconditionally performs the action pred looks for.
func MustReachFromEntry(fn *Function, pred func(Instruction) bool) bool {
	if fn == nil || fn.Incomplete || len(fn.Blocks) == 0 {
		return false
	}
	if entryDeferSatisfies(fn, pred) {
		return true
	}
	return mustReachSets(fn, pred)[fn.Blocks[0]]
}

func entryDeferSatisfies(fn *Function, pred func(Instruction) bool) bool {
	for _, in := range fn.Blocks[0].Instrs {
		if c, ok := in.(*Call); ok && c.IsDefer && pred(in) {
			return true
		}
	}
	return false
}

// mustReachSets computes, per block, whether every path from the block's
// start to a returning exit passes a satisfying instruction (greatest
// fixpoint: blocks start optimistic and are demoted until stable).
func mustReachSets(fn *Function, pred func(Instruction) bool) map[*Block]bool {
	ok := make(map[*Block]bool, len(fn.Blocks))
	hasPred := make(map[*Block]bool, len(fn.Blocks))
	for _, b := range fn.Blocks {
		ok[b] = true
		for _, in := range b.Instrs {
			if pred(in) {
				hasPred[b] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fn.Blocks {
			v := blockOK(b, hasPred[b], ok)
			if v != ok[b] {
				ok[b] = v
				changed = true
			}
		}
	}
	return ok
}

func blockOK(b *Block, hasPred bool, ok map[*Block]bool) bool {
	if hasPred {
		return true
	}
	if len(b.Succs) == 0 {
		return nonReturningExit(b)
	}
	for _, s := range b.Succs {
		if !ok[s] {
			return false
		}
	}
	return true
}

// nonReturningExit reports whether an exit block cannot actually return to
// the caller: it is dead code, or it ends in panic / a conventional
// process-terminating call.
func nonReturningExit(b *Block) bool {
	if !b.Live {
		return true
	}
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		switch in := b.Instrs[i].(type) {
		case *Return:
			return false
		case *Call:
			if in.IsDefer || in.IsGo {
				continue
			}
			if in.Builtin == "panic" {
				return true
			}
			switch in.CalleeName() {
			case "Fatal", "Fatalf", "Fatalln", "Exit", "Goexit":
				return true
			}
			return false
		}
	}
	return false
}
