package ssalite

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"
)

// builder drives translation of all functions of one package.
type builder struct {
	pass *analysis.Pass
	ssa  *SSA
}

// buildFunc translates fn's body. A panic anywhere in translation (the
// builder is defensive, but it runs over arbitrary packages) marks fn
// Incomplete instead of killing the whole analysis.
func (b *builder) buildFunc(fn *Function, cfgs *ctrlflow.CFGs) {
	defer func() {
		if recover() != nil {
			fn.Incomplete = true
			fn.Blocks = nil
		}
	}()

	var g *cfg.CFG
	var typ *ast.FuncType
	var body *ast.BlockStmt
	switch {
	case fn.Decl != nil:
		if fn.Decl.Body == nil {
			return
		}
		g = cfgs.FuncDecl(fn.Decl)
		typ, body = fn.Decl.Type, fn.Decl.Body
	case fn.Lit != nil:
		g = cfgs.FuncLit(fn.Lit)
		typ, body = fn.Lit.Type, fn.Lit.Body
	}
	if g == nil || body == nil {
		return
	}

	fb := &funcBuilder{
		builder: b,
		fn:      fn,
		info:    b.pass.TypesInfo,
		cache:   map[ast.Expr]Value{},
		ranges:  map[ast.Expr]rangeRole{},
	}
	fb.declareParams(typ, fn.Decl)
	fb.collectRanges(body)

	// Mirror the cfg blocks 1:1.
	mirror := make(map[*cfg.Block]*Block, len(g.Blocks))
	for i, cb := range g.Blocks {
		mirror[cb] = &Block{Index: i, Live: cb.Live}
	}
	for _, cb := range g.Blocks {
		nb := mirror[cb]
		for _, succ := range cb.Succs {
			nb.Succs = append(nb.Succs, mirror[succ])
		}
		fn.Blocks = append(fn.Blocks, nb)
	}
	for _, cb := range g.Blocks {
		fb.cur = mirror[cb]
		for _, n := range cb.Nodes {
			fb.node(n)
		}
	}
}

// rangeRole marks an expression that is the key or value variable of a
// range statement: cfg lists those as bare nodes, but they are assignment
// targets, not reads.
type rangeRole struct {
	stmt  *ast.RangeStmt
	isKey bool
}

type funcBuilder struct {
	*builder
	fn    *Function
	info  *types.Info
	cur   *Block
	cache map[ast.Expr]Value
	// ranges maps the Key/Value exprs of the function's own range
	// statements (not those of nested literals) to their role.
	ranges map[ast.Expr]rangeRole
}

// setBlock lets emit place the embedded register of any instruction.
type placeable interface{ setBlock(*Block, int) }

func (r *register) setBlock(b *Block, i int) { r.blk = b; r.idx = i }

func (fb *funcBuilder) emit(in Instruction) Instruction {
	if fb.cur == nil {
		// Defensive: a node outside any block (should not happen).
		fb.cur = &Block{Index: len(fb.fn.Blocks), Live: false}
		fb.fn.Blocks = append(fb.fn.Blocks, fb.cur)
	}
	in.(placeable).setBlock(fb.cur, len(fb.cur.Instrs))
	fb.cur.Instrs = append(fb.cur.Instrs, in)
	return in
}

func (fb *funcBuilder) reg(pos token.Pos, typ types.Type) register {
	return register{pos: pos, typ: typ}
}

func (fb *funcBuilder) typeOf(e ast.Expr) types.Type { return fb.info.TypeOf(e) }

// declareParams creates the receiver, parameter and named-result cells.
func (fb *funcBuilder) declareParams(typ *ast.FuncType, decl *ast.FuncDecl) {
	declare := func(fl *ast.FieldList, param bool, isRecv bool) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				obj := fb.info.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				c := &Cell{Obj: obj, IsParam: param, pos: name.Pos(), typ: obj.Type()}
				fb.fn.cells[obj] = c
				if isRecv {
					fb.fn.Recv = c
				} else if param {
					fb.fn.Params = append(fb.fn.Params, c)
				}
			}
		}
	}
	if decl != nil {
		declare(decl.Recv, true, true)
	}
	declare(typ.Params, true, false)
	declare(typ.Results, false, false)
}

// collectRanges records the key/value exprs of range statements directly in
// body, skipping nested function literals (they build their own ranges).
func (fb *funcBuilder) collectRanges(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if n.Key != nil {
				fb.ranges[n.Key] = rangeRole{stmt: n, isKey: true}
			}
			if n.Value != nil {
				fb.ranges[n.Value] = rangeRole{stmt: n, isKey: false}
			}
		}
		return true
	})
}

// node translates one cfg block node: a statement, or an expression that
// cfg lifted out (conditions, range operands, range key/value).
func (fb *funcBuilder) node(n ast.Node) {
	switch n := n.(type) {
	case ast.Stmt:
		fb.stmt(n)
	case ast.Expr:
		if role, ok := fb.ranges[n]; ok {
			fb.rangeAssign(n, role)
			return
		}
		fb.expr(n)
	}
}

// rangeAssign models the per-iteration `key, value := range X` stores.
func (fb *funcBuilder) rangeAssign(target ast.Expr, role rangeRole) {
	if id, ok := ast.Unparen(target).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	x := fb.expr(role.stmt.X)
	elem := fb.emit(&RangeElem{register: fb.reg(target.Pos(), fb.typeOf(target)), X: x, IsKey: role.isKey})
	fb.assignTo(target, elem.(Value))
}

func (fb *funcBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		fb.assign(s)
	case *ast.ExprStmt:
		fb.expr(s.X)
	case *ast.IncDecStmt:
		addr := fb.addr(s.X)
		if addr == nil {
			return
		}
		load := fb.emit(&Load{register: fb.reg(s.X.Pos(), fb.typeOf(s.X)), Addr: addr}).(Value)
		op := token.ADD
		if s.Tok == token.DEC {
			op = token.SUB
		}
		one := &Const{pos: s.Pos(), typ: fb.typeOf(s.X)}
		val := fb.emit(&BinOp{register: fb.reg(s.Pos(), fb.typeOf(s.X)), Op: op, X: load, Y: one}).(Value)
		fb.emit(&Store{register: fb.reg(s.Pos(), nil), Addr: addr, Val: val})
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fb.valueSpec(vs)
				}
			}
		}
	case *ast.DeferStmt:
		fb.callExpr(s.Call, true, false)
	case *ast.GoStmt:
		fb.callExpr(s.Call, false, true)
	case *ast.SendStmt:
		fb.emit(&Send{register: fb.reg(s.Pos(), nil), Chan: fb.expr(s.Chan), Val: fb.expr(s.Value)})
	case *ast.ReturnStmt:
		var results []Value
		for _, r := range s.Results {
			results = append(results, fb.expr(r))
		}
		fb.emit(&Return{register: fb.reg(s.Pos(), nil), Results: results})
	case *ast.LabeledStmt:
		fb.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
		// control only
	}
}

// valueSpec translates `var a, b T = x, y` (or an init-less declaration).
func (fb *funcBuilder) valueSpec(vs *ast.ValueSpec) {
	var vals []Value
	switch {
	case len(vs.Values) == 1 && len(vs.Names) > 1:
		tuple := fb.expr(vs.Values[0])
		for i := range vs.Names {
			vals = append(vals, fb.extract(tuple, i, vs.Values[0].Pos()))
		}
	default:
		for _, v := range vs.Values {
			vals = append(vals, fb.expr(v))
		}
	}
	for i, name := range vs.Names {
		if i < len(vals) {
			fb.assignTo(name, vals[i])
		} else if name.Name != "_" {
			// Ensure a cell exists even without an initializer.
			if obj := fb.info.Defs[name]; obj != nil {
				fb.cellFor(obj, name.Pos())
			}
		}
	}
}

func (fb *funcBuilder) assign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Op-assign: x op= y  ==>  load x; binop; store x.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		rhs := fb.expr(s.Rhs[0])
		op := s.Tok + (token.ADD - token.ADD_ASSIGN)
		if idx, ok := ast.Unparen(s.Lhs[0]).(*ast.IndexExpr); ok && isMap(fb.typeOf(idx.X)) {
			m, k := fb.expr(idx.X), fb.expr(idx.Index)
			old := fb.emit(&Load{register: fb.reg(idx.Pos(), fb.typeOf(idx)), Addr: fb.emit(&IndexAddr{register: fb.reg(idx.Pos(), nil), X: m, Index: k}).(Value)}).(Value)
			val := fb.emit(&BinOp{register: fb.reg(s.Pos(), fb.typeOf(s.Lhs[0])), Op: op, X: old, Y: rhs}).(Value)
			fb.emit(&MapUpdate{register: fb.reg(s.Pos(), nil), Map: m, Key: k, Val: val})
			return
		}
		addr := fb.addr(s.Lhs[0])
		if addr == nil {
			return
		}
		old := fb.emit(&Load{register: fb.reg(s.Lhs[0].Pos(), fb.typeOf(s.Lhs[0])), Addr: addr}).(Value)
		val := fb.emit(&BinOp{register: fb.reg(s.Pos(), fb.typeOf(s.Lhs[0])), Op: op, X: old, Y: rhs}).(Value)
		fb.emit(&Store{register: fb.reg(s.Pos(), nil), Addr: addr, Val: val})
		return
	}

	var vals []Value
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		tuple := fb.expr(s.Rhs[0])
		for i := range s.Lhs {
			vals = append(vals, fb.extract(tuple, i, s.Rhs[0].Pos()))
		}
	} else {
		for _, r := range s.Rhs {
			vals = append(vals, fb.expr(r))
		}
	}
	for i, lhs := range s.Lhs {
		if i < len(vals) {
			fb.assignTo(lhs, vals[i])
		}
	}
}

// assignTo stores val into the location denoted by lhs.
func (fb *funcBuilder) assignTo(lhs ast.Expr, val Value) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok && isMap(fb.typeOf(idx.X)) {
		fb.emit(&MapUpdate{
			register: fb.reg(lhs.Pos(), nil),
			Map:      fb.expr(idx.X), Key: fb.expr(idx.Index), Val: val,
		})
		return
	}
	addr := fb.addr(lhs)
	if addr == nil {
		return
	}
	fb.emit(&Store{register: fb.reg(lhs.Pos(), nil), Addr: addr, Val: val})
}

// cellFor returns (creating on demand) the cell of a function-local
// variable, or nil when obj is not function-local.
func (fb *funcBuilder) cellFor(obj types.Object, pos token.Pos) *Cell {
	if obj == nil {
		return nil
	}
	if c := fb.fn.Cell(obj); c != nil {
		return c
	}
	if v, ok := obj.(*types.Var); !ok || v.IsField() {
		return nil
	}
	if obj.Parent() == fb.pass.Pkg.Scope() || obj.Parent() == types.Universe {
		return nil
	}
	c := &Cell{Obj: obj, pos: pos, typ: obj.Type()}
	fb.fn.cells[obj] = c
	return c
}

// addr translates an assignable expression to an address value: a *Cell,
// *Global, *FieldAddr, *IndexAddr, or (for explicit derefs) the pointer
// value itself. Returns nil for the blank identifier.
func (fb *funcBuilder) addr(e ast.Expr) Value {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		obj := fb.info.Defs[e]
		if obj == nil {
			obj = fb.info.Uses[e]
		}
		if c := fb.cellFor(obj, e.Pos()); c != nil {
			return c
		}
		if obj != nil {
			return &Global{Obj: obj, pos: e.Pos()}
		}
		return &Opaque{pos: e.Pos()}
	case *ast.SelectorExpr:
		if g := fb.qualified(e); g != nil {
			return g
		}
		sel, ok := fb.info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return &Opaque{Ops: []Value{fb.expr(e.X)}, pos: e.Pos()}
		}
		var base Value
		if isPointer(fb.typeOf(e.X)) {
			base = fb.expr(e.X)
		} else {
			base = fb.addr(e.X)
			if base == nil {
				base = &Opaque{pos: e.X.Pos()}
			}
		}
		fld, _ := sel.Obj().(*types.Var)
		return fb.emit(&FieldAddr{register: fb.reg(e.Sel.Pos(), nil), X: base, Field: fld, Sel: e}).(Value)
	case *ast.IndexExpr:
		return fb.emit(&IndexAddr{register: fb.reg(e.Pos(), nil), X: fb.expr(e.X), Index: fb.expr(e.Index)}).(Value)
	case *ast.StarExpr:
		return fb.expr(e.X)
	}
	return &Opaque{Ops: []Value{fb.expr(e)}, pos: e.Pos()}
}

// qualified resolves pkg.Name selector expressions to a Global, or nil.
func (fb *funcBuilder) qualified(e *ast.SelectorExpr) *Global {
	id, ok := ast.Unparen(e.X).(*ast.Ident)
	if !ok {
		return nil
	}
	if _, ok := fb.info.Uses[id].(*types.PkgName); !ok {
		return nil
	}
	if obj := fb.info.Uses[e.Sel]; obj != nil {
		return &Global{Obj: obj, pos: e.Pos()}
	}
	return nil
}

// expr translates an expression to a Value, memoized per ast.Expr pointer:
// cfg lists conditions and range operands both as standalone nodes and
// within statements, and re-translation would duplicate instructions.
func (fb *funcBuilder) expr(e ast.Expr) Value {
	if v, ok := fb.cache[e]; ok {
		return v
	}
	v := fb.exprUncached(e)
	if v == nil {
		v = &Opaque{pos: e.Pos(), typ: fb.typeOf(e)}
	}
	fb.cache[e] = v
	return v
}

func (fb *funcBuilder) exprUncached(e ast.Expr) Value {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return fb.expr(e.X)
	case *ast.Ident:
		return fb.identValue(e)
	case *ast.BasicLit:
		return &Const{pos: e.Pos(), typ: fb.typeOf(e)}
	case *ast.SelectorExpr:
		if g := fb.qualified(e); g != nil {
			if _, isVar := g.Obj.(*types.Var); isVar {
				return fb.emit(&Load{register: fb.reg(e.Pos(), fb.typeOf(e)), Addr: g}).(Value)
			}
			return g
		}
		sel, ok := fb.info.Selections[e]
		if ok && sel.Kind() == types.FieldVal {
			fld, _ := sel.Obj().(*types.Var)
			fa := fb.emit(&FieldAddr{register: fb.reg(e.Sel.Pos(), nil), X: fb.expr(e.X), Field: fld, Sel: e}).(Value)
			return fb.emit(&Load{register: fb.reg(e.Pos(), fb.typeOf(e)), Addr: fa}).(Value)
		}
		// Method value or unresolved selection.
		return &Opaque{Ops: []Value{fb.expr(e.X)}, pos: e.Pos(), typ: fb.typeOf(e)}
	case *ast.CallExpr:
		return fb.callExpr(e, false, false)
	case *ast.CompositeLit:
		return fb.compositeLit(e, false)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return fb.compositeLit(cl, true)
			}
			if a := fb.addr(e.X); a != nil {
				return a
			}
			return &Opaque{Ops: []Value{fb.expr(e.X)}, pos: e.Pos(), typ: fb.typeOf(e)}
		default:
			return fb.emit(&UnOp{register: fb.reg(e.Pos(), fb.typeOf(e)), Op: e.Op, X: fb.expr(e.X)}).(Value)
		}
	case *ast.StarExpr:
		return fb.emit(&Load{register: fb.reg(e.Pos(), fb.typeOf(e)), Addr: fb.expr(e.X)}).(Value)
	case *ast.BinaryExpr:
		return fb.emit(&BinOp{register: fb.reg(e.Pos(), fb.typeOf(e)), Op: e.Op, X: fb.expr(e.X), Y: fb.expr(e.Y)}).(Value)
	case *ast.IndexExpr:
		// Generic instantiation: the "index" is a type argument.
		if obj := fb.info.Uses[identOf(e.X)]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return &Global{Obj: obj, pos: e.Pos()}
			}
		}
		ia := fb.emit(&IndexAddr{register: fb.reg(e.Pos(), nil), X: fb.expr(e.X), Index: fb.expr(e.Index)}).(Value)
		return fb.emit(&Load{register: fb.reg(e.Pos(), fb.typeOf(e)), Addr: ia}).(Value)
	case *ast.IndexListExpr:
		if obj := fb.info.Uses[identOf(e.X)]; obj != nil {
			return &Global{Obj: obj, pos: e.Pos()}
		}
		return &Opaque{Ops: []Value{fb.expr(e.X)}, pos: e.Pos(), typ: fb.typeOf(e)}
	case *ast.SliceExpr:
		s := &Slice{register: fb.reg(e.Pos(), fb.typeOf(e)), X: fb.expr(e.X)}
		if e.Low != nil {
			s.Low = fb.expr(e.Low)
		}
		if e.High != nil {
			s.High = fb.expr(e.High)
		}
		if e.Max != nil {
			s.Max = fb.expr(e.Max)
		}
		return fb.emit(s).(Value)
	case *ast.TypeAssertExpr:
		var asserted types.Type
		if e.Type != nil {
			asserted = fb.typeOf(e.Type)
		}
		return fb.emit(&TypeAssert{register: fb.reg(e.Pos(), fb.typeOf(e)), X: fb.expr(e.X), Asserted: asserted}).(Value)
	case *ast.FuncLit:
		fn := fb.ssa.LitFunc[e]
		if fn == nil {
			return &Opaque{pos: e.Pos(), typ: fb.typeOf(e)}
		}
		return fb.emit(&MakeClosure{register: fb.reg(e.Pos(), fb.typeOf(e)), Lit: e, Fn: fn}).(Value)
	}
	return &Opaque{pos: e.Pos(), typ: fb.typeOf(e)}
}

func (fb *funcBuilder) identValue(e *ast.Ident) Value {
	obj := fb.info.Uses[e]
	if obj == nil {
		obj = fb.info.Defs[e]
	}
	switch obj := obj.(type) {
	case nil:
		return &Opaque{pos: e.Pos(), typ: fb.typeOf(e)}
	case *types.Const, *types.Nil:
		return &Const{pos: e.Pos(), typ: fb.typeOf(e)}
	case *types.Var:
		if c := fb.cellFor(obj, e.Pos()); c != nil {
			return fb.emit(&Load{register: fb.reg(e.Pos(), fb.typeOf(e)), Addr: c}).(Value)
		}
		return fb.emit(&Load{register: fb.reg(e.Pos(), fb.typeOf(e)), Addr: &Global{Obj: obj, pos: e.Pos()}}).(Value)
	case *types.Func:
		return &Global{Obj: obj, pos: e.Pos()}
	}
	return &Opaque{pos: e.Pos(), typ: fb.typeOf(e)}
}

// compositeLit translates T{...} (heap=false) or &T{...}/new(T) (heap=true).
func (fb *funcBuilder) compositeLit(e *ast.CompositeLit, heap bool) Value {
	var elts []Value
	for _, elt := range e.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elts = append(elts, fb.expr(kv.Value))
			continue
		}
		elts = append(elts, fb.expr(elt))
	}
	typ := fb.typeOf(e)
	if heap && typ != nil {
		typ = types.NewPointer(typ)
	}
	return fb.emit(&AllocLit{register: fb.reg(e.Pos(), typ), Comp: e, Heap: heap, Elts: elts}).(Value)
}

// callExpr translates a call, conversion, or builtin.
func (fb *funcBuilder) callExpr(e *ast.CallExpr, isDefer, isGo bool) Value {
	if v, ok := fb.cache[e]; ok {
		return v
	}
	v := fb.callUncached(e, isDefer, isGo)
	fb.cache[e] = v
	return v
}

func (fb *funcBuilder) callUncached(e *ast.CallExpr, isDefer, isGo bool) Value {
	// Conversion T(x)?
	if tv, ok := fb.info.Types[e.Fun]; ok && tv.IsType() {
		if len(e.Args) != 1 {
			return &Opaque{pos: e.Pos(), typ: fb.typeOf(e)}
		}
		x := fb.expr(e.Args[0])
		if t := fb.typeOf(e); t != nil && types.IsInterface(t) {
			return fb.emit(&MakeInterface{register: fb.reg(e.Pos(), t), X: x}).(Value)
		}
		return fb.emit(&Convert{register: fb.reg(e.Pos(), fb.typeOf(e)), X: x}).(Value)
	}

	if bi, ok := typeutil.Callee(fb.info, e).(*types.Builtin); ok {
		return fb.builtinCall(e, bi.Name(), isDefer, isGo)
	}

	call := &Call{register: fb.reg(e.Pos(), fb.typeOf(e)), Expr: e, IsDefer: isDefer, IsGo: isGo}
	for _, a := range e.Args {
		call.Args = append(call.Args, fb.expr(a))
	}
	if fn, ok := typeutil.Callee(fb.info, e).(*types.Func); ok {
		call.Callee = fn
	}
	switch fun := ast.Unparen(e.Fun).(type) {
	case *ast.SelectorExpr:
		call.Method = fun.Sel.Name
		if sel, ok := fb.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			call.Recv = fb.expr(fun.X)
		}
	case *ast.Ident:
		// Static package-level call (Callee set above) or dynamic call
		// through a closure-valued variable.
		if call.Callee == nil {
			call.Fun = fb.expr(fun)
		}
	default:
		call.Fun = fb.expr(e.Fun)
	}
	return fb.emit(call).(Value)
}

func (fb *funcBuilder) builtinCall(e *ast.CallExpr, name string, isDefer, isGo bool) Value {
	arg := func(i int) Value {
		if i < len(e.Args) {
			return fb.expr(e.Args[i])
		}
		return nil
	}
	switch name {
	case "make":
		t := fb.typeOf(e)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				return fb.emit(&MakeSlice{register: fb.reg(e.Pos(), t), Len: arg(1), Cap: arg(2)}).(Value)
			case *types.Map:
				return fb.emit(&MakeMap{register: fb.reg(e.Pos(), t), Size: arg(1)}).(Value)
			case *types.Chan:
				return fb.emit(&MakeChan{register: fb.reg(e.Pos(), t), Size: arg(1)}).(Value)
			}
		}
	case "append":
		a := &Append{register: fb.reg(e.Pos(), fb.typeOf(e)), Slice: fb.expr(e.Args[0]), Ellipsis: e.Ellipsis.IsValid()}
		for _, x := range e.Args[1:] {
			a.Args = append(a.Args, fb.expr(x))
		}
		return fb.emit(a).(Value)
	case "delete":
		if len(e.Args) == 2 {
			return fb.emit(&MapDelete{register: fb.reg(e.Pos(), nil), Map: arg(0), Key: arg(1)}).(Value)
		}
	case "new":
		t := fb.typeOf(e)
		return fb.emit(&AllocLit{register: fb.reg(e.Pos(), t), Heap: true}).(Value)
	}
	call := &Call{register: fb.reg(e.Pos(), fb.typeOf(e)), Expr: e, Builtin: name, IsDefer: isDefer, IsGo: isGo}
	for _, a := range e.Args {
		// Type arguments of builtins (e.g. make fallthrough) are harmless
		// as Opaques.
		call.Args = append(call.Args, fb.expr(a))
	}
	return fb.emit(call).(Value)
}

// extract emits an Extract typed from the tuple's signature when known,
// so type-driven taint sources survive multi-result unpacking.
func (fb *funcBuilder) extract(tuple Value, i int, pos token.Pos) Value {
	var typ types.Type
	if t, ok := tuple.Type().(*types.Tuple); ok && i < t.Len() {
		typ = t.At(i).Type()
	}
	return fb.emit(&Extract{register: fb.reg(pos, typ), Tuple: tuple, Index: i}).(Value)
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
