// Package ssalite builds a static-single-assignment-flavoured IR for the
// pqolint analyzers (rcupublish, epochflow, hotalloc) on top of the
// syntactic control-flow graphs produced by the vendored
// golang.org/x/tools/go/cfg package.
//
// Why not golang.org/x/tools/go/ssa + passes/buildssa? Those packages are
// not part of the x/tools subset the Go distribution vendors, and this
// repository builds fully offline (no module cache, no network), so the
// real SSA packages are unobtainable here. Rather than pass off a
// hand-written reimplementation under the x/tools import path, this
// package implements — honestly and minimally — exactly the IR the
// analyzers need:
//
//   - It is in *naive* SSA form: named variables are not renamed into phi
//     webs. Every local variable and parameter is a Cell (the analogue of
//     ssa.Alloc for vars); reads become Load and writes become Store
//     instructions. Flow-insensitive analyses key taint by *Cell, which
//     is exactly as precise as phi-merging for the checks built on top.
//   - Expression translation is memoized per ast.Expr pointer, because
//     cfg lists some expressions (conditions, range operands) as their own
//     block nodes in addition to their enclosing statements; without
//     memoization a call would be counted twice.
//   - Translation never fails: constructs outside the modeled subset
//     become Opaque values that still carry their operands, so taint
//     propagates through them conservatively. A panic while building one
//     function (none is known, but the builder is used on arbitrary
//     packages) marks just that Function Incomplete instead of crashing
//     the analysis.
//
// The entry point is Analyzer, a buildssa-style dependency analyzer whose
// result is *SSA; client analyzers list it in Requires.
package ssalite

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Analyzer builds the ssalite IR for all functions (declarations and
// literals) of a package. It reports nothing; its result, *SSA, is consumed
// by the invariant analyzers through Requires.
var Analyzer = &analysis.Analyzer{
	Name:       "ssalite",
	Doc:        "build the ssalite IR consumed by the rcupublish, epochflow and hotalloc analyzers",
	Requires:   []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	ResultType: reflect.TypeOf((*SSA)(nil)),
	Run:        run,
}

// SSA holds the IR of one package.
type SSA struct {
	Pkg *types.Package
	// Funcs lists every function with a body — declarations and function
	// literals — in source order. Literals follow their enclosing
	// declaration and carry a Parent link.
	Funcs []*Function
	// LitFunc maps a function literal to its Function.
	LitFunc map[*ast.FuncLit]*Function
	// DeclFunc maps a declared function/method object to its Function.
	DeclFunc map[*types.Func]*Function
}

// Function is the IR of one function body.
type Function struct {
	// Name is the declared name, or "outer$litN" for function literals.
	Name   string
	Decl   *ast.FuncDecl // nil for literals
	Lit    *ast.FuncLit  // nil for declarations
	Obj    *types.Func   // nil for literals
	Parent *Function     // enclosing function, for literals
	// Blocks mirrors the cfg blocks; Blocks[0] is the entry. Nil when the
	// function has no body (external decl) or when Incomplete.
	Blocks []*Block
	// Recv is the receiver cell, if any; Params the parameter cells.
	Recv   *Cell
	Params []*Cell
	// Incomplete marks a function whose body could not be translated;
	// analyzers should treat it conservatively (skip, do not trust).
	Incomplete bool

	cells map[types.Object]*Cell
}

// Cells returns the storage cells of the function's named locals,
// parameters and receiver, in no particular order.
func (f *Function) Cells() []*Cell {
	out := make([]*Cell, 0, len(f.cells))
	for _, c := range f.cells {
		out = append(out, c)
	}
	return out
}

// Cell returns the cell for obj, searching enclosing functions for
// variables captured by a literal. It returns nil if obj has no cell.
func (f *Function) Cell(obj types.Object) *Cell {
	for fn := f; fn != nil; fn = fn.Parent {
		if c, ok := fn.cells[obj]; ok {
			return c
		}
	}
	return nil
}

// Instrs calls visit for every instruction of the function, in block order.
func (f *Function) Instrs(visit func(Instruction)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			visit(in)
		}
	}
}

func (f *Function) String() string { return f.Name }

// Block is a basic block.
type Block struct {
	Index  int
	Instrs []Instruction
	Succs  []*Block
	// Live is false for blocks unreachable from the entry.
	Live bool
}

// Value is an abstract operand: a constant, a storage cell, or the result
// of an instruction. Operands exposes the values it was computed from so
// taint analyses can chase definitions through unmodeled constructs.
type Value interface {
	Pos() token.Pos
	Type() types.Type // may be nil when unknown
	Operands() []Value
	String() string
}

// Instruction is one step of a block. Instructions that produce a result
// also implement Value.
type Instruction interface {
	Pos() token.Pos
	Block() *Block
	// index returns the instruction's position within its block.
	index() int
	Operands() []Value
	String() string
}

// register is the common core of instructions; embedding it makes a type
// an Instruction (and, with Type, a Value).
type register struct {
	pos token.Pos
	typ types.Type
	blk *Block
	idx int
}

func (r *register) Pos() token.Pos   { return r.pos }
func (r *register) Type() types.Type { return r.typ }
func (r *register) Block() *Block    { return r.blk }
func (r *register) index() int       { return r.idx }

// Cell is the storage of one named variable (local, parameter or receiver).
// It is an address: reads appear as Load{Addr: cell} and writes as
// Store{Addr: cell}. Type is the variable's type (not a pointer to it).
type Cell struct {
	Obj     types.Object
	IsParam bool // parameter or receiver
	pos     token.Pos
	typ     types.Type
}

func (c *Cell) Pos() token.Pos    { return c.pos }
func (c *Cell) Type() types.Type  { return c.typ }
func (c *Cell) Operands() []Value { return nil }
func (c *Cell) String() string {
	if c.Obj != nil {
		return "cell:" + c.Obj.Name()
	}
	return "cell:?"
}

// Const is a constant expression (including nil and untyped constants).
type Const struct {
	pos token.Pos
	typ types.Type
}

func (c *Const) Pos() token.Pos    { return c.pos }
func (c *Const) Type() types.Type  { return c.typ }
func (c *Const) Operands() []Value { return nil }
func (c *Const) String() string    { return "const" }

// Global is a reference to a package-level object (variable, function,
// imported name). Like Cell it is an address when the object is a
// variable: reads go through Load.
type Global struct {
	Obj types.Object
	pos token.Pos
}

func (g *Global) Pos() token.Pos   { return g.pos }
func (g *Global) Type() types.Type {
	if g.Obj != nil {
		return g.Obj.Type()
	}
	return nil
}
func (g *Global) Operands() []Value { return nil }
func (g *Global) String() string {
	if g.Obj != nil {
		return "global:" + g.Obj.Name()
	}
	return "global:?"
}

// Opaque stands for any value outside the modeled subset. It keeps the
// values it was derived from, so taint flows through it.
type Opaque struct {
	Ops []Value
	pos token.Pos
	typ types.Type
}

func (o *Opaque) Pos() token.Pos    { return o.pos }
func (o *Opaque) Type() types.Type  { return o.typ }
func (o *Opaque) Operands() []Value { return o.Ops }
func (o *Opaque) String() string    { return "opaque" }

// Load reads through an address (Cell, Global, FieldAddr, IndexAddr, or a
// pointer-valued expression for explicit dereferences).
type Load struct {
	register
	Addr Value
}

func (l *Load) Operands() []Value { return []Value{l.Addr} }
func (l *Load) String() string    { return "load " + l.Addr.String() }

// Store writes Val through Addr.
type Store struct {
	register
	Addr Value
	Val  Value
}

func (s *Store) Operands() []Value { return []Value{s.Addr, s.Val} }
func (s *Store) String() string    { return "store " + s.Addr.String() }

// FieldAddr is the address of a struct field: X.Field. X is the struct
// value or a pointer to it (implicit dereference, as in go/ssa).
type FieldAddr struct {
	register
	X     Value
	Field *types.Var
	Sel   *ast.SelectorExpr
}

func (f *FieldAddr) Operands() []Value { return []Value{f.X} }
func (f *FieldAddr) String() string {
	name := "?"
	if f.Field != nil {
		name = f.Field.Name()
	}
	return "fieldaddr ." + name
}

// IndexAddr is the address of a slice/array element, or of a map element
// when used as a load source.
type IndexAddr struct {
	register
	X     Value
	Index Value
}

func (i *IndexAddr) Operands() []Value { return []Value{i.X, i.Index} }
func (i *IndexAddr) String() string    { return "indexaddr" }

// Call is a function, method, builtin, deferred or go call.
type Call struct {
	register
	Expr *ast.CallExpr
	// Fun is the called value for dynamic calls (closures, func fields);
	// nil when the callee is statically resolved or a builtin.
	Fun Value
	// Callee is the statically resolved callee, when known.
	Callee *types.Func
	// Method is the bare selector/identifier name of the callee, e.g.
	// "publishLocked" for s.publishLocked(). Empty for dynamic calls
	// through non-selector expressions.
	Method string
	// Recv is the receiver value for method calls (the translated sel.X).
	Recv Value
	// Builtin names a builtin callee (len, cap, copy, panic, ...) that was
	// not given a dedicated instruction.
	Builtin string
	Args    []Value
	IsDefer bool
	IsGo    bool
}

func (c *Call) Operands() []Value {
	ops := make([]Value, 0, len(c.Args)+2)
	if c.Fun != nil {
		ops = append(ops, c.Fun)
	}
	if c.Recv != nil {
		ops = append(ops, c.Recv)
	}
	return append(ops, c.Args...)
}

// StaticCallee returns the statically resolved callee, or nil.
func (c *Call) StaticCallee() *types.Func { return c.Callee }

// CalleeName returns the bare name of the callee: the method/function
// name for resolved or selector calls, the builtin name for builtins, and
// "" for fully dynamic calls.
func (c *Call) CalleeName() string {
	if c.Method != "" {
		return c.Method
	}
	if c.Callee != nil {
		return c.Callee.Name()
	}
	return c.Builtin
}

func (c *Call) String() string { return "call " + c.CalleeName() }

// BinOp is a binary expression.
type BinOp struct {
	register
	Op   token.Token
	X, Y Value
}

func (b *BinOp) Operands() []Value { return []Value{b.X, b.Y} }
func (b *BinOp) String() string    { return "binop " + b.Op.String() }

// UnOp is a unary expression (including channel receive, token.ARROW).
type UnOp struct {
	register
	Op token.Token
	X  Value
}

func (u *UnOp) Operands() []Value { return []Value{u.X} }
func (u *UnOp) String() string    { return "unop " + u.Op.String() }

// MakeSlice is make([]T, len[, cap]).
type MakeSlice struct {
	register
	Len, Cap Value // Cap nil when absent
}

func (m *MakeSlice) Operands() []Value {
	if m.Cap != nil {
		return []Value{m.Len, m.Cap}
	}
	return []Value{m.Len}
}
func (m *MakeSlice) String() string { return "makeslice" }

// MakeMap is make(map[K]V[, size]).
type MakeMap struct {
	register
	Size Value // nil when absent
}

func (m *MakeMap) Operands() []Value {
	if m.Size != nil {
		return []Value{m.Size}
	}
	return nil
}
func (m *MakeMap) String() string { return "makemap" }

// MakeChan is make(chan T[, size]).
type MakeChan struct {
	register
	Size Value // nil when absent
}

func (m *MakeChan) Operands() []Value {
	if m.Size != nil {
		return []Value{m.Size}
	}
	return nil
}
func (m *MakeChan) String() string { return "makechan" }

// Append is append(slice, args...).
type Append struct {
	register
	Slice    Value
	Args     []Value
	Ellipsis bool
}

func (a *Append) Operands() []Value { return append([]Value{a.Slice}, a.Args...) }
func (a *Append) String() string    { return "append" }

// AllocLit is a composite literal (T{...} or &T{...}) or new(T). Heap
// distinguishes the address-taken forms (&T{...}, new) from plain value
// literals.
type AllocLit struct {
	register
	Comp *ast.CompositeLit // nil for new(T)
	Heap bool
	Elts []Value
}

func (a *AllocLit) Operands() []Value { return a.Elts }
func (a *AllocLit) String() string {
	if a.Heap {
		return "alloc (heap)"
	}
	return "alloc"
}

// MakeClosure is a function literal value.
type MakeClosure struct {
	register
	Lit *ast.FuncLit
	Fn  *Function
}

func (m *MakeClosure) Operands() []Value { return nil }
func (m *MakeClosure) String() string    { return "makeclosure " + m.Fn.Name }

// MakeInterface is a conversion of a concrete value to an interface type.
type MakeInterface struct {
	register
	X Value
}

func (m *MakeInterface) Operands() []Value { return []Value{m.X} }
func (m *MakeInterface) String() string    { return "makeinterface" }

// Convert is a (non-interface) type conversion.
type Convert struct {
	register
	X Value
}

func (c *Convert) Operands() []Value { return []Value{c.X} }
func (c *Convert) String() string    { return "convert" }

// TypeAssert is x.(T). Asserted is nil inside a type switch (x.(type)).
type TypeAssert struct {
	register
	X        Value
	Asserted types.Type
}

func (t *TypeAssert) Operands() []Value { return []Value{t.X} }
func (t *TypeAssert) String() string    { return "typeassert" }

// Extract selects result Index of a multi-valued operation.
type Extract struct {
	register
	Tuple Value
	Index int
}

func (e *Extract) Operands() []Value { return []Value{e.Tuple} }
func (e *Extract) String() string    { return fmt.Sprintf("extract #%d", e.Index) }

// Slice is x[lo:hi:max].
type Slice struct {
	register
	X              Value
	Low, High, Max Value // any may be nil
}

func (s *Slice) Operands() []Value {
	ops := []Value{s.X}
	for _, v := range []Value{s.Low, s.High, s.Max} {
		if v != nil {
			ops = append(ops, v)
		}
	}
	return ops
}
func (s *Slice) String() string { return "slice" }

// RangeElem is the per-iteration key or value produced by ranging over X.
type RangeElem struct {
	register
	X     Value
	IsKey bool
}

func (r *RangeElem) Operands() []Value { return []Value{r.X} }
func (r *RangeElem) String() string {
	if r.IsKey {
		return "range.key"
	}
	return "range.value"
}

// MapUpdate is m[k] = v.
type MapUpdate struct {
	register
	Map, Key, Val Value
}

func (m *MapUpdate) Operands() []Value { return []Value{m.Map, m.Key, m.Val} }
func (m *MapUpdate) String() string    { return "mapupdate" }

// MapDelete is delete(m, k).
type MapDelete struct {
	register
	Map, Key Value
}

func (m *MapDelete) Operands() []Value { return []Value{m.Map, m.Key} }
func (m *MapDelete) String() string    { return "mapdelete" }

// Send is ch <- v.
type Send struct {
	register
	Chan, Val Value
}

func (s *Send) Operands() []Value { return []Value{s.Chan, s.Val} }
func (s *Send) String() string    { return "send" }

// Return exits the function.
type Return struct {
	register
	Results []Value
}

func (r *Return) Operands() []Value { return r.Results }
func (r *Return) String() string    { return "return" }

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ssa := &SSA{
		Pkg:      pass.Pkg,
		LitFunc:  map[*ast.FuncLit]*Function{},
		DeclFunc: map[*types.Func]*Function{},
	}

	// Pass 1: create Function shells so MakeClosure can reference literal
	// functions before their bodies are built, and record parent links.
	type workItem struct {
		fn  *Function
		cfg func() any // deferred: ctrlflow lookups can panic on broken input
	}
	litCount := map[*Function]int{}
	var stack []*Function
	ins.Nodes([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node, push bool) bool {
		if !push {
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
			return true
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			fn := &Function{Name: n.Name.Name, Decl: n, cells: map[types.Object]*Cell{}}
			if obj, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
				fn.Obj = obj
				ssa.DeclFunc[obj] = fn
			}
			ssa.Funcs = append(ssa.Funcs, fn)
			stack = append(stack, fn)
		case *ast.FuncLit:
			var parent *Function
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
			}
			name := "lit"
			if parent != nil {
				litCount[parent]++
				name = fmt.Sprintf("%s$lit%d", parent.Name, litCount[parent])
			}
			fn := &Function{Name: name, Lit: n, Parent: parent, cells: map[types.Object]*Cell{}}
			ssa.LitFunc[n] = fn
			ssa.Funcs = append(ssa.Funcs, fn)
			stack = append(stack, fn)
		}
		return true
	})

	// Pass 2: build bodies in Funcs order (parents precede their literals,
	// so captured variables resolve to already-created parent cells).
	b := &builder{pass: pass, ssa: ssa}
	for _, fn := range ssa.Funcs {
		b.buildFunc(fn, cfgs)
	}
	return ssa, nil
}
