package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint"
)

func TestAnalyzersValid(t *testing.T) {
	as := lint.Analyzers()
	if len(as) != 8 {
		t.Fatalf("Analyzers() returned %d analyzers, want 8", len(as))
	}
	if err := analysis.Validate(as); err != nil {
		t.Fatalf("invalid analyzer graph: %v", err)
	}
	seen := map[string]bool{}
	for _, a := range as {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestPqolintCleanOnTree is the meta-check: the repository must stay free of
// pqolint findings (modulo reasoned //lint:allow suppressions).
func TestPqolintCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full linter")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "pqolint")

	build := exec.Command("go", "build", "-o", bin, "./cmd/pqolint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pqolint: %v\n%s", err, out)
	}

	run := exec.Command(bin, "./...")
	run.Dir = root
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("pqolint is not clean on the tree:\n%s", out)
	}
}
