// Package lint assembles the pqolint analyzer suite: the project-specific
// go/analysis analyzers that machine-check the invariants the serving hot
// path depends on (docs/LINT.md). cmd/pqolint runs them via go vet
// -vettool; internal/lint/linttest runs them over fixtures.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/cacheinvalidation"
	"repro/internal/lint/costdeterminism"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/envpool"
	"repro/internal/lint/epochflow"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/lockdiscipline"
	"repro/internal/lint/rcupublish"
)

// Analyzers returns the full pqolint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		envpool.Analyzer,
		lockdiscipline.Analyzer,
		costdeterminism.Analyzer,
		cacheinvalidation.Analyzer,
		ctxflow.Analyzer,
		rcupublish.Analyzer,
		epochflow.Analyzer,
		hotalloc.Analyzer,
	}
}
