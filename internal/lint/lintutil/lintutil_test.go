package lintutil_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/lintutil"
)

// newPass builds a minimal pass over src for an analyzer with the given name,
// collecting diagnostics into the returned slice pointer.
func newPass(t *testing.T, name, src string) (*analysis.Pass, *[]analysis.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: &analysis.Analyzer{Name: name},
		Fset:     fset,
		Files:    []*ast.File{f},
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	return pass, &diags
}

// posOf returns the position of the first occurrence of needle in the file.
func posOf(t *testing.T, pass *analysis.Pass, src, needle string) token.Pos {
	t.Helper()
	off := strings.Index(src, needle)
	if off < 0 {
		t.Fatalf("%q not in source", needle)
	}
	return pass.Fset.File(pass.Files[0].Pos()).Pos(off)
}

func TestAllowSuppressesSameLine(t *testing.T) {
	src := "package p\n\nfunc f() {\n\tbad() //lint:allow mylint audited\n}\n\nfunc bad() {}\n"
	pass, diags := newPass(t, "mylint", src)
	lintutil.Report(pass, posOf(t, pass, src, "bad()"), "flagged")
	if len(*diags) != 0 {
		t.Fatalf("same-line allow did not suppress: %v", *diags)
	}
}

func TestAllowSuppressesNextLine(t *testing.T) {
	src := "package p\n\nfunc f() {\n\t//lint:allow mylint audited\n\tbad()\n}\n\nfunc bad() {}\n"
	pass, diags := newPass(t, "mylint", src)
	lintutil.Report(pass, posOf(t, pass, src, "bad()"), "flagged")
	if len(*diags) != 0 {
		t.Fatalf("above-line allow did not suppress: %v", *diags)
	}
}

func TestAllowOtherAnalyzerDoesNotSuppress(t *testing.T) {
	src := "package p\n\nfunc f() {\n\tbad() //lint:allow otherlint audited\n}\n\nfunc bad() {}\n"
	pass, diags := newPass(t, "mylint", src)
	lintutil.Report(pass, posOf(t, pass, src, "bad()"), "flagged")
	if len(*diags) != 1 {
		t.Fatalf("allow for another analyzer suppressed mylint: %v", *diags)
	}
}

func TestAllowList(t *testing.T) {
	src := "package p\n\nfunc f() {\n\tbad() //lint:allow a,b shared reason\n}\n\nfunc bad() {}\n"
	for _, name := range []string{"a", "b"} {
		pass, diags := newPass(t, name, src)
		lintutil.Report(pass, posOf(t, pass, src, "bad()"), "flagged")
		if len(*diags) != 0 {
			t.Fatalf("comma-list allow did not suppress %s: %v", name, *diags)
		}
	}
}

func TestAllowWithoutReasonIsReported(t *testing.T) {
	src := "package p\n\nfunc f() {\n\t//lint:allow mylint\n\tbad()\n}\n\nfunc bad() {}\n"
	pass, diags := newPass(t, "mylint", src)
	lintutil.ReportAllowMisuse(pass)
	if len(*diags) != 1 || !strings.Contains((*diags)[0].Message, "needs a reason") {
		t.Fatalf("reason-less allow not reported: %v", *diags)
	}
	// And it must NOT suppress the diagnostic it hoped to silence.
	lintutil.Report(pass, posOf(t, pass, src, "bad()"), "flagged")
	if len(*diags) != 2 {
		t.Fatalf("reason-less allow suppressed the diagnostic: %v", *diags)
	}
}

func TestPkgInScope(t *testing.T) {
	cases := []struct {
		path string
		segs []string
		want bool
	}{
		{"repro/internal/core", []string{"core", "server"}, true},
		{"repro/internal/server", []string{"core", "server"}, true},
		{"repro/internal/corelib", []string{"core"}, false},
		{"repro/internal/stats", []string{"memo", "cost", "stats"}, true},
		{"repro/cmd/pqolint", []string{"core"}, false},
	}
	for _, c := range cases {
		if got := lintutil.PkgInScope(c.path, c.segs); got != c.want {
			t.Errorf("PkgInScope(%q, %v) = %v, want %v", c.path, c.segs, got, c.want)
		}
	}
}
