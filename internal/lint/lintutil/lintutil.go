// Package lintutil is the shared plumbing of the pqolint analyzers: the
// `//lint:allow <analyzer> <reason>` suppression convention, package-scope
// gating, and the CFG path searches used by the resource-pairing and
// post-domination checks (see docs/LINT.md).
package lintutil

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
	"sync"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// allowPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason>
//
// The comment suppresses matching diagnostics reported on its own line and
// on the line directly below it (so it works both as a trailing comment and
// as a standalone comment above the flagged statement). The reason is
// mandatory: an allow without one is itself reported, so every intentional
// invariant violation stays auditable.
const allowPrefix = "//lint:allow"

// allowRecord is one analyzer name an allow comment suppresses, together
// with the recorded reason.
type allowRecord struct {
	Name   string
	Reason string
}

// AllowSpec is one parsed //lint:allow comment: the analyzer names it
// suppresses and the mandatory reason (empty when the comment is
// malformed).
type AllowSpec struct {
	Names  []string
	Reason string
}

// ParseAllow parses a comment's text as a lint:allow comment. ok is false
// when the comment is not an allow comment or names no analyzer. A spec
// with an empty Reason is malformed: analyzers report it via
// ReportAllowMisuse, and pqolint -allows lists it as an audit error.
func ParseAllow(text string) (spec AllowSpec, ok bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return AllowSpec{}, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
	if len(fields) == 0 {
		return AllowSpec{}, false
	}
	spec.Names = strings.Split(fields[0], ",")
	spec.Reason = strings.Join(fields[1:], " ")
	return spec, true
}

// allowTable indexes the suppression comments of one package.
type allowTable struct {
	// lines maps file name → line → suppressions active there.
	lines map[string]map[int][]allowRecord
	// malformed holds positions of allow comments with no reason, keyed by
	// the analyzer names they mention.
	malformed map[string][]token.Pos
}

var (
	tablesMu sync.Mutex
	tables   = map[*analysis.Pass]*allowTable{}
)

func allowsFor(pass *analysis.Pass) *allowTable {
	tablesMu.Lock()
	defer tablesMu.Unlock()
	if t, ok := tables[pass]; ok {
		return t
	}
	t := &allowTable{
		lines:     map[string]map[int][]allowRecord{},
		malformed: map[string][]token.Pos{},
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				spec, ok := ParseAllow(c.Text)
				if !ok {
					continue // not an allow, or bare "//lint:allow"
				}
				if spec.Reason == "" {
					for _, n := range spec.Names {
						t.malformed[n] = append(t.malformed[n], c.Pos())
					}
					continue
				}
				p := pass.Fset.Position(c.Pos())
				m := t.lines[p.Filename]
				if m == nil {
					m = map[int][]allowRecord{}
					t.lines[p.Filename] = m
				}
				for _, n := range spec.Names {
					rec := allowRecord{Name: n, Reason: spec.Reason}
					m[p.Line] = append(m[p.Line], rec)
					m[p.Line+1] = append(m[p.Line+1], rec)
				}
			}
		}
	}
	tables[pass] = t
	return t
}

// SuppressedPrefix marks diagnostics that a //lint:allow comment matched:
// they are emitted (instead of dropped) only when EmitSuppressed is set,
// so pqolint -json can list intentional violations alongside real ones.
// The text inside the brackets after the colon is the recorded reason.
const SuppressedPrefix = "[suppressed:"

// EmitSuppressed reports whether suppressed diagnostics should be emitted
// with SuppressedPrefix rather than dropped. pqolint -json sets the
// environment variable so its report can include intentional violations.
func EmitSuppressed() bool {
	return os.Getenv("PQOLINT_EMIT_SUPPRESSED") == "1"
}

// Report files a diagnostic for pass's analyzer at pos unless a matching
// //lint:allow comment suppresses it. Under EmitSuppressed a suppressed
// diagnostic is emitted anyway, tagged with SuppressedPrefix and the
// allow's reason.
func Report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	t := allowsFor(pass)
	p := pass.Fset.Position(pos)
	for _, rec := range t.lines[p.Filename][p.Line] {
		if rec.Name == pass.Analyzer.Name {
			if EmitSuppressed() {
				pass.Reportf(pos, SuppressedPrefix+"%s] "+format, append([]any{rec.Reason}, args...)...)
			}
			return
		}
	}
	pass.Reportf(pos, format, args...)
}

// Allowed reports whether an //lint:allow comment for analyzer name
// covers pos. Analyzers use it to prune whole declarations (e.g. hotalloc
// skips a function whose decl carries an allow).
func Allowed(pass *analysis.Pass, pos token.Pos, name string) bool {
	t := allowsFor(pass)
	p := pass.Fset.Position(pos)
	for _, rec := range t.lines[p.Filename][p.Line] {
		if rec.Name == name {
			return true
		}
	}
	return false
}

// ReportAllowMisuse files a diagnostic for every //lint:allow comment that
// names pass's analyzer but carries no reason. Each analyzer calls this once
// so that reason-less suppressions of its name are caught exactly once.
func ReportAllowMisuse(pass *analysis.Pass) {
	t := allowsFor(pass)
	for _, pos := range t.malformed[pass.Analyzer.Name] {
		pass.Reportf(pos, "lint:allow %s needs a reason: //lint:allow %s <why>", pass.Analyzer.Name, pass.Analyzer.Name)
	}
}

// InTestFile reports whether pos lies in a _test.go file.
func InTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.File(pos).Name(), "_test.go")
}

// PkgInScope reports whether the package path has any of the given path
// segments (e.g. "memo" matches repro/internal/memo). Analyzer fixtures use
// bare segment paths, so a full-path suffix match is also accepted.
func PkgInScope(path string, segments []string) bool {
	parts := strings.Split(path, "/")
	for _, want := range segments {
		for _, p := range parts {
			if p == want {
				return true
			}
		}
	}
	return false
}

// FindNode locates the CFG block and node index of node n, which must be a
// statement-level node (pointer identity). ok is false when the node is not
// in the graph (e.g. dead code).
func FindNode(g *cfg.CFG, n ast.Node) (b *cfg.Block, idx int, ok bool) {
	for _, blk := range g.Blocks {
		for i, nd := range blk.Nodes {
			if nd == n {
				return blk, i, true
			}
		}
	}
	return nil, 0, false
}

// LeaksToExit searches for a path from just after (start, idx) to a function
// exit that never passes a node satisfied by stop. skipEdge, when non-nil,
// prunes edges that must not be followed (e.g. the error branch of the
// acquisition's own err check). boundary, when non-nil, marks nodes that end
// the search on a path without deciding it (e.g. re-acquisition on a loop
// back edge). It returns the position of the escaping exit.
func LeaksToExit(start *cfg.Block, idx int, stop func(ast.Node) bool, skipEdge func(from, to *cfg.Block) bool, boundary func(ast.Node) bool) (token.Pos, bool) {
	type item struct {
		b   *cfg.Block
		idx int
	}
	seen := map[*cfg.Block]bool{}
	var walk func(it item) (token.Pos, bool)
	walk = func(it item) (token.Pos, bool) {
		for i := it.idx; i < len(it.b.Nodes); i++ {
			nd := it.b.Nodes[i]
			if stop(nd) {
				return token.NoPos, false
			}
			if boundary != nil && boundary(nd) {
				return token.NoPos, false
			}
		}
		if len(it.b.Succs) == 0 {
			if !it.b.Live {
				return token.NoPos, false
			}
			// Exit reached without a satisfying node.
			pos := token.NoPos
			if n := len(it.b.Nodes); n > 0 {
				pos = it.b.Nodes[n-1].Pos()
			} else if it.b.Stmt != nil {
				pos = it.b.Stmt.End()
			}
			return pos, true
		}
		for _, succ := range it.b.Succs {
			if seen[succ] {
				continue
			}
			if skipEdge != nil && skipEdge(it.b, succ) {
				continue
			}
			seen[succ] = true
			if pos, leak := walk(item{b: succ, idx: 0}); leak {
				return pos, true
			}
		}
		return token.NoPos, false
	}
	return walk(item{b: start, idx: idx})
}
