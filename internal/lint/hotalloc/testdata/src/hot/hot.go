// Package hot models the serving hot path for the hotalloc analyzer:
// Process is the root, the Decision it returns is the one budgeted
// allocation, and everything else Process reaches must not allocate.
package hot

type item struct {
	fp   string
	cost float64
}

type Decision struct {
	Plan string
	Cost float64
}

type stat struct{ n int }

type table struct {
	items []item
	hist  []stat
	last  *stat
}

func note(v any) {}

func spawn(f func()) { f() }

// Process is a hot-path root: everything it reaches is budget-checked.
func (t *table) Process(fp string) *Decision {
	if len(t.hist) == 0 {
		t.rebuild()
	}
	t.observe(fp)
	t.last = t.retain(fp)
	best := t.minCostPlan(fp)
	return &Decision{Plan: fp, Cost: best} // the budgeted allocation: exempt
}

// minCostPlan preallocates its scratch once (allowed, with reason) and
// appends into it growth-free: compliant.
func (t *table) minCostPlan(fp string) float64 {
	cands := make([]float64, 0, 8) //lint:allow hotalloc single budgeted scratch allocation per call
	for _, it := range t.items {
		if it.fp == fp {
			cands = append(cands, it.cost)
		}
	}
	best := 1e18
	for _, c := range cands {
		if c < best {
			best = c
		}
	}
	return best
}

// observe is reachable from Process and allocates every call, five ways.
func (t *table) observe(fp string) {
	seen := make(map[string]bool) // want `make of a map in observe \(hot path via Process\) breaks the per-call allocation budget`
	seen[fp] = true
	var all []string
	all = append(all, fp) // want `append growth over a non-preallocated slice in observe`
	local := func() int { return len(all) }
	spawn(func() { _ = local() }) // want `escaping closure allocation \(captured variables move to the heap\) in observe`
	note(stat{n: len(all)})       // want `interface boxing of stat in observe`
}

// retain leaks a per-call heap node that is not the budgeted Decision.
func (t *table) retain(fp string) *stat {
	return &stat{n: len(fp)} // want `heap allocation of stat in retain \(hot path via Process\)`
}

// rebuild is cold (startup only): the decl-level allow prunes it and
// everything only reachable through it from the hot-path walk.
//
//lint:allow hotalloc cold startup path, not reachable per steady-state request
func (t *table) rebuild() {
	t.hist = make([]stat, 0, 64)
	t.colder()
}

// colder allocates freely: it is only reachable through the pruned
// rebuild, so nothing is reported.
func (t *table) colder() {
	_ = make([]int, 8)
}

// setup is not reachable from any root: unchecked.
func setup() []int { return make([]int, 4) }

var _ = setup
