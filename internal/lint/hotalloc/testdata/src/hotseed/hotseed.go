// Package hotseed seeds the regression hotalloc exists to catch: the
// candidate scratch in minCostPlan lost its capacity preallocation, so
// every Process call now grows the slice through repeated reallocations —
// exactly the 2-alloc-budget break docs/PERF.md warns about.
package hotseed

type cand struct{ cost float64 }

type table struct{ cands []cand }

func (t *table) Process() float64 { return t.minCostPlan() }

// minCostPlan lost its `make([]cand, 0, capHint)` — the seeded bug.
func (t *table) minCostPlan() float64 {
	var out []cand
	for _, c := range t.cands {
		if c.cost > 0 {
			out = append(out, c) // want `append growth over a non-preallocated slice in minCostPlan \(hot path via minCostPlan\)`
		}
	}
	best := 1e18
	for _, c := range out {
		if c.cost < best {
			best = c.cost
		}
	}
	return best
}
