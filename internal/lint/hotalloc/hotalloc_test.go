package hotalloc_test

import (
	"testing"

	"repro/internal/lint/hotalloc"
	"repro/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "hot")
}

// TestSeededRegression proves the analyzer catches the defect class it
// was built for: a hot-path candidate scratch whose capacity
// preallocation was removed.
func TestSeededRegression(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "hotseed")
}
