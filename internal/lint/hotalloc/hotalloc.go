// Package hotalloc enforces the per-call allocation budget of the
// serving hot path (docs/PERF.md): Process and the functions it reaches
// must not allocate beyond the budgeted decision object, or tail latency
// regresses under concurrency.
//
// Over the ssalite IR, the analyzer walks the static same-package call
// graph from the configured roots (Process, getPlan, minCostPlan and the
// re-costing entry points by default) and flags, in every reachable
// function:
//
//   - make of slices, maps and channels;
//   - append calls whose backing slice does not provably come from a
//     capacity-preallocated make in the same function (growth realloc);
//   - escaping closures: a func literal passed to a call, returned, or
//     stored into a structure forces its captures onto the heap. Purely
//     local closures (assigned to a variable and invoked in place) and
//     deferred literals stay off the heap and pass;
//   - interface boxing of non-pointer concrete values (the boxed copy
//     allocates; pointers ride in the interface word for free);
//   - heap composite literals and new(T), except for the budgeted result
//     types (-hotalloc.budget, default Decision).
//
// Cold helpers that the walk would otherwise drag in (publishers, resort
// paths) carry a decl-level //lint:allow hotalloc <reason>, which prunes
// them and their callees from the walk; single sites on the miss path are
// excused the same way inline. The walk does not descend into function
// literals: a closure on the hot path is flagged at its creation site,
// which is the allocation.
package hotalloc

import (
	"flag"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/lintutil"
	"repro/internal/lint/ssalite"
)

var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      "flag allocation sites reachable from the serving hot path that break the per-call allocation budget",
	Flags:    flags(),
	Requires: []*analysis.Analyzer{ssalite.Analyzer},
	Run:      run,
}

// scope lists the package path segments the check applies to.
var scope = []string{"core", "engine", "memo", "hot", "hotseed"}

var (
	rootsFlag  = "Process,getPlan,minCostPlan,Recost,RecostPlanWith"
	budgetFlag = "Decision"
)

func flags() flag.FlagSet {
	fs := flag.NewFlagSet("hotalloc", flag.ExitOnError)
	fs.StringVar(&rootsFlag, "roots", rootsFlag,
		"comma-separated function/method names rooting the hot-path call graph")
	fs.StringVar(&budgetFlag, "budget", budgetFlag,
		"comma-separated type names whose heap allocation is budgeted (exempt)")
	return *fs
}

func splitList(s string) map[string]bool {
	out := map[string]bool{}
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out[f] = true
		}
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgInScope(pass.Pkg.Path(), scope) {
		return nil, nil
	}
	lintutil.ReportAllowMisuse(pass)
	ssa := pass.ResultOf[ssalite.Analyzer].(*ssalite.SSA)
	roots := splitList(rootsFlag)
	budget := splitList(budgetFlag)

	// Name → declared functions (methods of different types may share a
	// name; the walk follows all of them, conservatively).
	byName := map[string][]*ssalite.Function{}
	for _, fn := range ssa.Funcs {
		if fn.Decl != nil {
			byName[fn.Name] = append(byName[fn.Name], fn)
		}
	}

	// pruned: a decl-level allow excuses the function and, through it,
	// everything only reachable via its body.
	pruned := func(fn *ssalite.Function) bool {
		return fn.Decl != nil && lintutil.Allowed(pass, fn.Decl.Pos(), "hotalloc")
	}

	// BFS over the static call graph; rootOf records attribution.
	rootOf := map[*ssalite.Function]string{}
	var queue []*ssalite.Function
	for _, fn := range ssa.Funcs {
		if fn.Decl == nil || !roots[fn.Name] || fn.Incomplete {
			continue
		}
		if lintutil.InTestFile(pass, fn.Decl.Pos()) || pruned(fn) {
			continue
		}
		rootOf[fn] = fn.Name
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fn.Instrs(func(in ssalite.Instruction) {
			c, ok := in.(*ssalite.Call)
			if !ok {
				return
			}
			for _, callee := range byName[c.CalleeName()] {
				if callee == fn || callee.Incomplete {
					continue
				}
				if _, seen := rootOf[callee]; seen || pruned(callee) {
					continue
				}
				if lintutil.InTestFile(pass, callee.Decl.Pos()) {
					continue
				}
				rootOf[callee] = rootOf[fn]
				queue = append(queue, callee)
			}
		})
	}

	for fn, root := range rootOf {
		checkFunc(pass, fn, root, budget)
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ssalite.Function, root string, budget map[string]bool) {
	prealloc := preallocatedCells(fn)
	escaping := escapingClosures(fn)
	report := func(pos token.Pos, what string) {
		lintutil.Report(pass, pos,
			"%s in %s (hot path via %s) breaks the per-call allocation budget; preallocate, hoist, or justify with lint:allow",
			what, fn.Name, root)
	}
	fn.Instrs(func(in ssalite.Instruction) {
		switch in := in.(type) {
		case *ssalite.MakeSlice:
			report(in.Pos(), "make of a slice")
		case *ssalite.MakeMap:
			report(in.Pos(), "make of a map")
		case *ssalite.MakeChan:
			report(in.Pos(), "make of a channel")
		case *ssalite.Append:
			if !fromPrealloc(in.Slice, prealloc, 0) {
				report(in.Pos(), "append growth over a non-preallocated slice")
			}
		case *ssalite.MakeClosure:
			if escaping[in] {
				report(in.Pos(), "escaping closure allocation (captured variables move to the heap)")
			}
		case *ssalite.MakeInterface:
			if t := concreteNonPointer(in.X, pass.Pkg); t != "" {
				report(in.Pos(), "interface boxing of "+t)
			}
		case *ssalite.Call:
			// Implicit boxing: a concrete non-pointer argument passed to
			// an interface parameter of a same-package callee. (Calls into
			// other packages — error formatting and the like — are the
			// slow path's business and are not second-guessed here.)
			if in.Callee == nil || in.Callee.Pkg() != pass.Pkg {
				return
			}
			sig, ok := in.Callee.Type().(*types.Signature)
			if !ok {
				return
			}
			params := sig.Params()
			for i, arg := range in.Args {
				var pt types.Type
				switch {
				case sig.Variadic() && i >= params.Len()-1:
					if params.Len() > 0 {
						if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
							pt = sl.Elem()
						}
					}
				case i < params.Len():
					pt = params.At(i).Type()
				}
				if pt == nil {
					continue
				}
				if _, isIface := pt.Underlying().(*types.Interface); !isIface {
					continue
				}
				if t := concreteNonPointer(arg, pass.Pkg); t != "" {
					report(arg.Pos(), "interface boxing of "+t)
				}
			}
		case *ssalite.AllocLit:
			if in.Heap {
				if name := typeName(in.Type()); !budget[name] {
					what := "heap allocation"
					if name != "" {
						what += " of " + name
					}
					report(in.Pos(), what)
				}
			}
		}
	})
}

// escapingClosures returns the MakeClosures of fn whose value escapes:
// used as a call argument (defers exempt — open-coded), returned, sent,
// stored into a structure, appended, or boxed. A closure only assigned to
// a local variable and invoked in place does not escape; loads of a cell
// holding a closure escape the stored closures when the load escapes.
func escapingClosures(fn *ssalite.Function) map[*ssalite.MakeClosure]bool {
	byCell := map[*ssalite.Cell][]*ssalite.MakeClosure{}
	fn.Instrs(func(in ssalite.Instruction) {
		if st, ok := in.(*ssalite.Store); ok {
			if c, ok := st.Addr.(*ssalite.Cell); ok {
				if mc, ok := st.Val.(*ssalite.MakeClosure); ok {
					byCell[c] = append(byCell[c], mc)
				}
			}
		}
	})
	out := map[*ssalite.MakeClosure]bool{}
	flag := func(v ssalite.Value) {
		switch v := v.(type) {
		case *ssalite.MakeClosure:
			out[v] = true
		case *ssalite.Load:
			if c, ok := v.Addr.(*ssalite.Cell); ok {
				for _, mc := range byCell[c] {
					out[mc] = true
				}
			}
		}
	}
	fn.Instrs(func(in ssalite.Instruction) {
		switch in := in.(type) {
		case *ssalite.Call:
			if in.IsDefer {
				return
			}
			for _, a := range in.Args {
				flag(a)
			}
		case *ssalite.Return:
			for _, r := range in.Results {
				flag(r)
			}
		case *ssalite.Store:
			if _, toCell := in.Addr.(*ssalite.Cell); !toCell {
				flag(in.Val)
			}
		case *ssalite.Send:
			flag(in.Val)
		case *ssalite.MapUpdate:
			flag(in.Val)
		case *ssalite.Append:
			for _, a := range in.Args {
				flag(a)
			}
		case *ssalite.MakeInterface:
			flag(in.X)
		}
	})
	return out
}

// preallocatedCells returns the cells that only ever hold a
// capacity-preallocated slice: assigned from make(T, n, c) or from an
// append over such a cell. Appends into them cannot grow within the
// budgeted capacity.
func preallocatedCells(fn *ssalite.Function) map[*ssalite.Cell]bool {
	ok := map[*ssalite.Cell]bool{}
	for changed := true; changed; {
		changed = false
		fn.Instrs(func(in ssalite.Instruction) {
			st, isStore := in.(*ssalite.Store)
			if !isStore {
				return
			}
			c, isCell := st.Addr.(*ssalite.Cell)
			if !isCell || ok[c] {
				return
			}
			switch v := st.Val.(type) {
			case *ssalite.MakeSlice:
				if v.Cap != nil {
					ok[c] = true
					changed = true
				}
			case *ssalite.Append:
				if fromPrealloc(v.Slice, ok, 0) {
					ok[c] = true
					changed = true
				}
			}
		})
	}
	return ok
}

func fromPrealloc(v ssalite.Value, prealloc map[*ssalite.Cell]bool, depth int) bool {
	if depth > 8 {
		return false
	}
	switch v := v.(type) {
	case *ssalite.Load:
		if c, ok := v.Addr.(*ssalite.Cell); ok {
			return prealloc[c]
		}
	case *ssalite.MakeSlice:
		return v.Cap != nil
	case *ssalite.Append:
		return fromPrealloc(v.Slice, prealloc, depth+1)
	case *ssalite.Slice:
		return fromPrealloc(v.X, prealloc, depth+1)
	}
	return false
}

// concreteNonPointer returns the display name of v's type when boxing it
// into an interface allocates: a concrete non-pointer type. Pointers,
// interfaces and unknown types return "".
func concreteNonPointer(v ssalite.Value, from *types.Package) string {
	if v == nil {
		return ""
	}
	t := v.Type()
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map, *types.Slice:
		// Pointer-shaped values ride in the interface data word (or are
		// reference types whose header boxing is what the other checks
		// already account for).
		return ""
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return ""
	}
	return types.TypeString(t, types.RelativeTo(from))
}

// typeName returns the bare named-type name of t (through pointers).
func typeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
