// Fixture for the fact-plumbing meta-test: a tagging analyzer exports an
// object fact for every exported function and a package fact counting
// them; a consumer analyzer (which Requires the tagger) imports both and
// reports what it sees. The diagnostics below therefore only appear when
// facts survive the export → gob round trip → import path.
package facts

func Tracked() int { return 1 } // want `fact tagged on Tracked`

func AlsoTracked() int { return 2 } // want `fact tagged on AlsoTracked`

// unexported functions are not tagged: no diagnostic.
func hidden() int { return Tracked() + AlsoTracked() }

var _ = hidden

// Count anchors the package-fact expectation.
const Count = 0 // want `package fact counts 2 tagged funcs`
