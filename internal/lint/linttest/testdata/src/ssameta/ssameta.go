// Fixture for the SSA meta-test: a probe analyzer that Requires
// ssalite.Analyzer reports every MakeSlice and MakeClosure instruction it
// sees, plus any function whose translation came back Incomplete. The
// wants below pin down that linttest drives the SSA dependency for real:
// instruction positions, literal naming (outer$litN) and completeness.
package ssameta

func build(n int) []int {
	s := make([]int, 0, n) // want `makeslice in build`
	for i := 0; i < n; i++ {
		s = append(s, i)
	}
	return s
}

func wrap() func() int {
	x := 1
	return func() int { return x } // want `closure wrap\$lit\d+ in wrap`
}

// loops exercises range translation; no allocation instructions, so no
// diagnostics — and, critically, no Incomplete report either.
func loops(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
