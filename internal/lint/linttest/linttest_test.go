package linttest_test

import (
	"go/token"
	"go/types"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/linttest"
	"repro/internal/lint/ssalite"
)

// tagFact marks an exported function; countFact counts the tags. Both
// carry exported fields so they survive the gob round trip the harness
// imposes on every export.
type tagFact struct{ Label string }

func (*tagFact) AFact() {}

type countFact struct{ N int }

func (*countFact) AFact() {}

// tagger exports a tagFact per exported package-scope function plus one
// countFact on the package.
var tagger = &analysis.Analyzer{
	Name:      "metatagger",
	Doc:       "export facts for the linttest plumbing meta-test",
	FactTypes: []analysis.Fact{(*tagFact)(nil), (*countFact)(nil)},
	Run: func(pass *analysis.Pass) (any, error) {
		n := 0
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			if fn, ok := scope.Lookup(name).(*types.Func); ok && fn.Exported() {
				pass.ExportObjectFact(fn, &tagFact{Label: fn.Name()})
				n++
			}
		}
		pass.ExportPackageFact(&countFact{N: n})
		return nil, nil
	},
}

// consumer requires tagger and reports every fact it can import back, so
// the fixture's want comments fail unless facts flow across the chain.
var consumer = &analysis.Analyzer{
	Name:     "metaconsumer",
	Doc:      "import facts exported by metatagger and report them",
	Requires: []*analysis.Analyzer{tagger},
	Run: func(pass *analysis.Pass) (any, error) {
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			fn, ok := scope.Lookup(name).(*types.Func)
			if !ok {
				continue
			}
			var f tagFact
			if pass.ImportObjectFact(fn, &f) {
				pass.Reportf(fn.Pos(), "fact tagged on %s", f.Label)
			}
		}
		var c countFact
		if pass.ImportPackageFact(pass.Pkg, &c) {
			if obj := scope.Lookup("Count"); obj != nil {
				pass.Reportf(obj.Pos(), "package fact counts %d tagged funcs", c.N)
			}
		}
		if got := len(pass.AllObjectFacts()); got != c.N {
			pass.Reportf(token.NoPos, "AllObjectFacts returned %d facts, want %d", got, c.N)
		}
		return nil, nil
	},
}

// TestFactPlumbing drives the exporter/consumer pair over the facts
// fixture: its wants only match when object and package facts survive the
// store's gob round trip.
func TestFactPlumbing(t *testing.T) {
	linttest.Run(t, consumer, "facts")
}

// unregistered exports a fact type missing from FactTypes; the harness
// must reject that the same way a real driver does.
var unregistered = &analysis.Analyzer{
	Name: "metaunregistered",
	Doc:  "export a fact without registering its type",
	Run: func(pass *analysis.Pass) (any, error) {
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			if fn, ok := scope.Lookup(name).(*types.Func); ok {
				pass.ExportObjectFact(fn, &tagFact{Label: name})
				break
			}
		}
		return nil, nil
	},
}

func TestUnregisteredFactPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("exporting an unregistered fact type did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "not registered in FactTypes") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	linttest.Run(t, unregistered, "facts")
}

// ssaProbe requires the ssalite builder and reports the allocation-shaped
// instructions it sees, pinning down that linttest drives SSA-backed
// analyzers with real translations (positions, literal naming, and no
// Incomplete fallbacks on ordinary code).
var ssaProbe = &analysis.Analyzer{
	Name:     "ssaprobe",
	Doc:      "surface ssalite instructions for the linttest meta-test",
	Requires: []*analysis.Analyzer{ssalite.Analyzer},
	Run: func(pass *analysis.Pass) (any, error) {
		ssa := pass.ResultOf[ssalite.Analyzer].(*ssalite.SSA)
		for _, fn := range ssa.Funcs {
			if fn.Incomplete {
				pos := token.NoPos
				if fn.Decl != nil {
					pos = fn.Decl.Pos()
				} else if fn.Lit != nil {
					pos = fn.Lit.Pos()
				}
				pass.Reportf(pos, "incomplete translation of %s", fn.Name)
				continue
			}
			name := fn.Name
			fn.Instrs(func(ins ssalite.Instruction) {
				switch i := ins.(type) {
				case *ssalite.MakeSlice:
					pass.Reportf(i.Pos(), "makeslice in %s", name)
				case *ssalite.MakeClosure:
					pass.Reportf(i.Pos(), "closure %s in %s", i.Fn.Name, name)
				}
			})
		}
		return nil, nil
	},
}

func TestSSAMetaFixture(t *testing.T) {
	linttest.Run(t, ssaProbe, "ssameta")
}
