// Package linttest is a self-contained analysistest replacement: it loads
// fixture packages from testdata/src/<pkg>, typechecks them (resolving
// fixture-local stub packages first and the standard library via the source
// importer), runs an analyzer together with its Requires dependencies, and
// compares the diagnostics against `// want "regexp"` comments.
//
// It exists because the x/tools analysistest package (and its go/packages
// dependency) is not vendored with the Go distribution; the subset of the
// analysis framework that is vendored (go/analysis, inspect, ctrlflow) is
// enough to drive analyzers directly. Facts are backed by an in-memory
// store shared across the Requires chain of one run: exported facts must
// use registered (FactTypes) gob-encodable types, as under the real
// driver, and imports see what earlier analyzers of the same run exported
// for this package. Cross-package fact import (from dependency packages)
// is not modeled — fixture dependencies are typechecked, not analyzed.
package linttest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// sharedFset is process-wide so the expensive source-importer work for the
// standard library is paid once across all analyzer tests.
var (
	sharedMu   sync.Mutex
	sharedFset = token.NewFileSet()
	sharedStd  types.Importer
	stdCache   = map[string]*types.Package{}
)

func stdImporter() types.Importer {
	if sharedStd == nil {
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	}
	return sharedStd
}

// loader resolves fixture packages under root, falling back to the standard
// library importer.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	names []string // file names, parallel to files
	pkg   *types.Package
	info  *types.Info
}

func (l *loader) Import(path string) (*types.Package, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp.pkg, nil
	}
	if dir := filepath.Join(l.root, path); dirExists(dir) {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if p, ok := stdCache[path]; ok {
		return p, nil
	}
	p, err := stdImporter().Import(path)
	if err == nil {
		stdCache[path] = p
	}
	return p, err
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses and typechecks the fixture package at root/path.
func (l *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{path: path}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		fp.files = append(fp.files, f)
		fp.names = append(fp.names, name)
	}
	if len(fp.files) == 0 {
		return nil, fmt.Errorf("linttest: no Go files in %s", dir)
	}
	fp.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, fp.files, fp.info)
	if err != nil {
		return nil, fmt.Errorf("linttest: typechecking %s: %w", path, err)
	}
	fp.pkg = pkg
	l.pkgs[path] = fp
	return fp, nil
}

// Run loads each named fixture package from testdata/src and checks a's
// diagnostics against the package's `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root := filepath.Join("testdata", "src")
	for _, pkg := range pkgs {
		runOne(t, root, a, pkg)
	}
}

func runOne(t *testing.T, root string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	sharedMu.Lock()
	fset := sharedFset
	sharedMu.Unlock()
	l := &loader{root: root, fset: fset, pkgs: map[string]*fixturePkg{}}
	fp, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	store := newFactStore()
	if err := runAnalyzer(a, fp, fset, map[*analysis.Analyzer]any{}, store, &diags); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	wants, err := parseWants(fp, fset)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", pkgPath, err)
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for i, w := range wants {
			if matched[i] || w.file != p.Filename || w.line != p.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", posString(p), d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// factStore is the in-memory fact database shared by one run's analyzer
// chain. It reproduces the driver contract the pqolint analyzers can rely
// on: facts live per (object|package, concrete fact type), exported fact
// types must be registered in the analyzer's FactTypes, and every fact
// must survive a gob round trip (the wire format real drivers use).
type factStore struct {
	obj map[types.Object]map[reflect.Type]analysis.Fact
	pkg map[*types.Package]map[reflect.Type]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: map[types.Object]map[reflect.Type]analysis.Fact{},
		pkg: map[*types.Package]map[reflect.Type]analysis.Fact{},
	}
}

// copyFact round-trips src into dst through gob, the same serialization
// boundary the unitchecker driver imposes between packages.
func copyFact(src, dst analysis.Fact) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(src); err != nil {
		return err
	}
	return gob.NewDecoder(&buf).Decode(dst)
}

// registered reports whether fact's concrete type appears in a.FactTypes.
func registered(a *analysis.Analyzer, fact analysis.Fact) bool {
	t := reflect.TypeOf(fact)
	for _, ft := range a.FactTypes {
		if reflect.TypeOf(ft) == t {
			return true
		}
	}
	return false
}

func (s *factStore) exportObj(a *analysis.Analyzer, obj types.Object, fact analysis.Fact) {
	if obj == nil {
		panic(fmt.Sprintf("linttest: %s: ExportObjectFact(nil, %T)", a.Name, fact))
	}
	if !registered(a, fact) {
		panic(fmt.Sprintf("linttest: %s: fact type %T not registered in FactTypes", a.Name, fact))
	}
	stored := reflect.New(reflect.TypeOf(fact).Elem()).Interface().(analysis.Fact)
	if err := copyFact(fact, stored); err != nil {
		panic(fmt.Sprintf("linttest: %s: fact %T is not gob-serializable: %v", a.Name, fact, err))
	}
	m := s.obj[obj]
	if m == nil {
		m = map[reflect.Type]analysis.Fact{}
		s.obj[obj] = m
	}
	m[reflect.TypeOf(fact)] = stored
}

func (s *factStore) exportPkg(a *analysis.Analyzer, pkg *types.Package, fact analysis.Fact) {
	if !registered(a, fact) {
		panic(fmt.Sprintf("linttest: %s: fact type %T not registered in FactTypes", a.Name, fact))
	}
	stored := reflect.New(reflect.TypeOf(fact).Elem()).Interface().(analysis.Fact)
	if err := copyFact(fact, stored); err != nil {
		panic(fmt.Sprintf("linttest: %s: fact %T is not gob-serializable: %v", a.Name, fact, err))
	}
	m := s.pkg[pkg]
	if m == nil {
		m = map[reflect.Type]analysis.Fact{}
		s.pkg[pkg] = m
	}
	m[reflect.TypeOf(fact)] = stored
}

func (s *factStore) importObj(obj types.Object, fact analysis.Fact) bool {
	stored, ok := s.obj[obj][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	if err := copyFact(stored, fact); err != nil {
		return false
	}
	return true
}

func (s *factStore) importPkg(pkg *types.Package, fact analysis.Fact) bool {
	stored, ok := s.pkg[pkg][reflect.TypeOf(fact)]
	if !ok {
		return false
	}
	if err := copyFact(stored, fact); err != nil {
		return false
	}
	return true
}

func (s *factStore) allObj() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for obj, m := range s.obj {
		for _, f := range m {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.Pos() < out[j].Object.Pos() })
	return out
}

func (s *factStore) allPkg() []analysis.PackageFact {
	var out []analysis.PackageFact
	for pkg, m := range s.pkg {
		for _, f := range m {
			out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Package.Path() < out[j].Package.Path() })
	return out
}

// runAnalyzer runs a (and, first, its Requires closure) over fp.
func runAnalyzer(a *analysis.Analyzer, fp *fixturePkg, fset *token.FileSet, results map[*analysis.Analyzer]any, store *factStore, diags *[]analysis.Diagnostic) error {
	if _, done := results[a]; done {
		return nil
	}
	resultOf := map[*analysis.Analyzer]any{}
	for _, req := range a.Requires {
		if err := runAnalyzer(req, fp, fset, results, store, nil); err != nil {
			return err
		}
		resultOf[req] = results[req]
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      fp.files,
		Pkg:        fp.pkg,
		TypesInfo:  fp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			if diags != nil {
				*diags = append(*diags, d)
			}
		},
		ReadFile: os.ReadFile,
		ImportObjectFact: func(obj types.Object, f analysis.Fact) bool {
			return store.importObj(obj, f)
		},
		ImportPackageFact: func(pkg *types.Package, f analysis.Fact) bool {
			return store.importPkg(pkg, f)
		},
		ExportObjectFact: func(obj types.Object, f analysis.Fact) {
			store.exportObj(a, obj, f)
		},
		ExportPackageFact: func(f analysis.Fact) {
			store.exportPkg(a, fp.pkg, f)
		},
		AllObjectFacts:  store.allObj,
		AllPackageFacts: store.allPkg,
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	results[a] = res
	return nil
}

// want is one expectation: a diagnostic matching rx at (file, line).
type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts `// want "rx" ["rx" ...]` expectations from the
// package's files. Each quoted string is a separate expected diagnostic on
// that line.
func parseWants(fp *fixturePkg, fset *token.FileSet) ([]want, error) {
	var wants []want
	for i, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				rxs, err := splitQuoted(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", fp.names[i], p.Line, err)
				}
				for _, s := range rxs {
					rx, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", fp.names[i], p.Line, s, err)
					}
					wants = append(wants, want{file: p.Filename, line: p.Line, rx: rx})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want expectations must be quoted strings, got %q", s)
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want string in %q", s)
		}
		lit := s[:end+1]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want string %s: %v", lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
