// Package linttest is a self-contained analysistest replacement: it loads
// fixture packages from testdata/src/<pkg>, typechecks them (resolving
// fixture-local stub packages first and the standard library via the source
// importer), runs an analyzer together with its Requires dependencies, and
// compares the diagnostics against `// want "regexp"` comments.
//
// It exists because the x/tools analysistest package (and its go/packages
// dependency) is not vendored with the Go distribution; the subset of the
// analysis framework that is vendored (go/analysis, inspect, ctrlflow) is
// enough to drive analyzers directly. Facts are stubbed out: none of the
// pqolint analyzers export facts, and ctrlflow degrades gracefully (it only
// loses cross-package no-return precision).
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// sharedFset is process-wide so the expensive source-importer work for the
// standard library is paid once across all analyzer tests.
var (
	sharedMu   sync.Mutex
	sharedFset = token.NewFileSet()
	sharedStd  types.Importer
	stdCache   = map[string]*types.Package{}
)

func stdImporter() types.Importer {
	if sharedStd == nil {
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	}
	return sharedStd
}

// loader resolves fixture packages under root, falling back to the standard
// library importer.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	names []string // file names, parallel to files
	pkg   *types.Package
	info  *types.Info
}

func (l *loader) Import(path string) (*types.Package, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp.pkg, nil
	}
	if dir := filepath.Join(l.root, path); dirExists(dir) {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if p, ok := stdCache[path]; ok {
		return p, nil
	}
	p, err := stdImporter().Import(path)
	if err == nil {
		stdCache[path] = p
	}
	return p, err
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses and typechecks the fixture package at root/path.
func (l *loader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{path: path}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		fp.files = append(fp.files, f)
		fp.names = append(fp.names, name)
	}
	if len(fp.files) == 0 {
		return nil, fmt.Errorf("linttest: no Go files in %s", dir)
	}
	fp.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, fp.files, fp.info)
	if err != nil {
		return nil, fmt.Errorf("linttest: typechecking %s: %w", path, err)
	}
	fp.pkg = pkg
	l.pkgs[path] = fp
	return fp, nil
}

// Run loads each named fixture package from testdata/src and checks a's
// diagnostics against the package's `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root := filepath.Join("testdata", "src")
	for _, pkg := range pkgs {
		runOne(t, root, a, pkg)
	}
}

func runOne(t *testing.T, root string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	sharedMu.Lock()
	fset := sharedFset
	sharedMu.Unlock()
	l := &loader{root: root, fset: fset, pkgs: map[string]*fixturePkg{}}
	fp, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	if err := runAnalyzer(a, fp, fset, map[*analysis.Analyzer]any{}, &diags); err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}

	wants, err := parseWants(fp, fset)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", pkgPath, err)
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		found := false
		for i, w := range wants {
			if matched[i] || w.file != p.Filename || w.line != p.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", posString(p), d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// runAnalyzer runs a (and, first, its Requires closure) over fp.
func runAnalyzer(a *analysis.Analyzer, fp *fixturePkg, fset *token.FileSet, results map[*analysis.Analyzer]any, diags *[]analysis.Diagnostic) error {
	if _, done := results[a]; done {
		return nil
	}
	resultOf := map[*analysis.Analyzer]any{}
	for _, req := range a.Requires {
		if err := runAnalyzer(req, fp, fset, results, nil); err != nil {
			return err
		}
		resultOf[req] = results[req]
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      fp.files,
		Pkg:        fp.pkg,
		TypesInfo:  fp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			if diags != nil {
				*diags = append(*diags, d)
			}
		},
		ReadFile:          os.ReadFile,
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	results[a] = res
	return nil
}

// want is one expectation: a diagnostic matching rx at (file, line).
type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts `// want "rx" ["rx" ...]` expectations from the
// package's files. Each quoted string is a separate expected diagnostic on
// that line.
func parseWants(fp *fixturePkg, fset *token.FileSet) ([]want, error) {
	var wants []want
	for i, f := range fp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				rxs, err := splitQuoted(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", fp.names[i], p.Line, err)
				}
				for _, s := range rxs {
					rx, err := regexp.Compile(s)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", fp.names[i], p.Line, s, err)
					}
					wants = append(wants, want{file: p.Filename, line: p.Line, rx: rx})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants, nil
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want expectations must be quoted strings, got %q", s)
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want string in %q", s)
		}
		lit := s[:end+1]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want string %s: %v", lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
