// Package cacheinvalidation checks that every mutation of an engine's or
// optimizer's statistics/catalog reference is post-dominated by a recost
// cache invalidation. The recost result cache memoizes costs that are
// deterministic in (plan, sv, statistics); swapping the statistics store
// without invalidating leaves stale costs behind, which silently corrupts
// the cost check and with it the λ-guarantee (docs/PERF.md, docs/LINT.md).
//
// Two calls invalidate: FlushRecostCache (drop everything) and
// AdvanceEpoch (install the swap as a new statistics generation — cached
// results are keyed by epoch id, so stale entries stop matching by
// construction and age out; docs/STATS.md). Inside internal/core only the
// epoch form is legal: the serving path must never pay a wholesale flush,
// so any FlushRecostCache call there is reported outright.
package cacheinvalidation

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "cacheinvalidation",
	Doc: "require FlushRecostCache or AdvanceEpoch on every path after a " +
		"stats/catalog swap on an engine or optimizer; ban wholesale " +
		"flushes from internal/core",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

// mutatedFields are the selector names whose reassignment invalidates
// cached recost results.
var mutatedFields = map[string]bool{"Stats": true, "Cat": true, "Catalog": true}

// flushNames are calls that perform the invalidation. The unexported
// rc.flush() form covers the engine package's own internals; AdvanceEpoch
// invalidates by construction because cached recost results are keyed by
// epoch id.
var flushNames = map[string]bool{"FlushRecostCache": true, "flush": true, "AdvanceEpoch": true}

// ownerTypeNames are the types whose Stats/Cat fields feed cost
// computation (matched by name so fixtures can stub them).
var ownerTypeNames = map[string]bool{"Optimizer": true, "TemplateEngine": true, "System": true}

func run(pass *analysis.Pass) (any, error) {
	lintutil.ReportAllowMisuse(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		g := cfgs.FuncDecl(fd)
		if g == nil {
			return
		}
		checkFunc(pass, fd, g)
	})

	// The serving-path ban: internal/core holds the hot path, where a
	// wholesale flush turns one stats refresh into a cache-wide cost
	// recomputation storm. Epoch advances make the flush unnecessary, so
	// inside core it is plain illegal.
	if strings.HasSuffix(pass.Pkg.Path(), "internal/core") {
		ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			call := n.(*ast.CallExpr)
			if methodName(call) == "FlushRecostCache" {
				lintutil.Report(pass, call.Pos(),
					"internal/core must not call FlushRecostCache; advance the statistics epoch instead — epoch-keyed recost entries age out without a hot-path flush")
			}
		})
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, g *cfg.CFG) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || !mutatedFields[sel.Sel.Name] {
				continue
			}
			if !isCostOwner(pass.TypesInfo.TypeOf(sel.X)) {
				continue
			}
			checkFlushed(pass, g, as, sel.Sel.Name)
		}
		return true
	})
}

// isCostOwner reports whether t is (a pointer to) one of the cost-owning
// struct types.
func isCostOwner(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return ownerTypeNames[named.Obj().Name()]
}

// checkFlushed verifies that every path from the mutation to function exit
// passes a flush call (post-domination on the CFG). A deferred flush also
// satisfies the check.
func checkFlushed(pass *analysis.Pass, g *cfg.CFG, as *ast.AssignStmt, field string) {
	blk, idx, ok := lintutil.FindNode(g, as)
	if !ok {
		return
	}
	isFlush := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if name := methodName(call); flushNames[name] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	if pos, leak := lintutil.LeaksToExit(blk, idx+1, isFlush, nil, nil); leak {
		detail := ""
		if pos.IsValid() {
			detail = " (unflushed path escapes near line " +
				itoa(pass.Fset.Position(pos).Line) + ")"
		}
		lintutil.Report(pass, as.Pos(),
			"%s swapped without FlushRecostCache on every following path%s; stale cached costs corrupt the cost check", field, detail)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func methodName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
