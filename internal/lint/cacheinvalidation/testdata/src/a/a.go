// Fixture for the cacheinvalidation analyzer: stats/catalog swaps on
// cost-owning types must be post-dominated by a recost-cache flush.
package a

type Store struct{ N int }

type Optimizer struct {
	Stats *Store
	Cat   *Store
}

type TemplateEngine struct {
	Opt *Optimizer
}

func (e *TemplateEngine) FlushRecostCache() {}

type Epoch struct{ ID int }

func (e *TemplateEngine) AdvanceEpoch(st *Store) *Epoch { return &Epoch{} }

// goodSwapThenFlush is the required pattern.
func goodSwapThenFlush(e *TemplateEngine, st *Store) {
	e.Opt.Stats = st
	e.FlushRecostCache()
}

// goodSwapThenAdvance: an epoch advance invalidates by construction —
// cached recost results are keyed by epoch id — so it satisfies the check
// without a flush.
func goodSwapThenAdvance(e *TemplateEngine, st *Store) {
	e.Opt.Stats = st
	e.AdvanceEpoch(st)
}

// goodSwapAdvanceOneFlushOther: the two invalidation forms mix freely.
func goodSwapAdvanceOneFlushOther(e *TemplateEngine, st *Store, cond bool) {
	e.Opt.Stats = st
	if cond {
		e.AdvanceEpoch(st)
		return
	}
	e.FlushRecostCache()
}

// goodSwapFlushBothPaths flushes on every path.
func goodSwapFlushBothPaths(e *TemplateEngine, st *Store, cond bool) {
	e.Opt.Stats = st
	if cond {
		e.FlushRecostCache()
		return
	}
	e.FlushRecostCache()
}

// badSwapNoFlush leaves stale cached costs behind.
func badSwapNoFlush(e *TemplateEngine, st *Store) {
	e.Opt.Stats = st // want `Stats swapped without FlushRecostCache`
}

// badSwapFlushOneBranch misses the else path.
func badSwapFlushOneBranch(e *TemplateEngine, st *Store, cond bool) {
	e.Opt.Stats = st // want `Stats swapped without FlushRecostCache`
	if cond {
		e.FlushRecostCache()
	}
}

// badCatalogSwap: the catalog reference is cost-bearing too.
func badCatalogSwap(o *Optimizer, c *Store) {
	o.Cat = c // want `Cat swapped without FlushRecostCache`
}

// goodUnrelatedField: only Stats/Cat/Catalog swaps are tracked.
func goodUnrelatedField(e *TemplateEngine, o *Optimizer) {
	e.Opt = o
}

// goodNonOwnerType: a Stats field on a non-cost-owning type is fine.
type metrics struct{ Stats *Store }

func goodNonOwnerType(m *metrics, st *Store) {
	m.Stats = st
}

// allowedSwap is the audited constructor-time pattern: nothing cached yet.
func allowedSwap(e *TemplateEngine, st *Store) {
	//lint:allow cacheinvalidation constructor path; cache is still empty
	e.Opt.Stats = st
}
