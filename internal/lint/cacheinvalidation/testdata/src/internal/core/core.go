// Fixture for the cacheinvalidation serving-path ban: the package path
// ends in internal/core, where wholesale recost-cache flushes are illegal
// — a statistics refresh must advance the epoch instead, so the hot path
// never pays a cache-wide invalidation.
package core

type Store struct{ N int }

type Epoch struct{ ID int }

type TemplateEngine struct{}

func (e *TemplateEngine) FlushRecostCache()               {}
func (e *TemplateEngine) AdvanceEpoch(st *Store) *Epoch   { return &Epoch{} }
func (e *TemplateEngine) RecostCacheCounters() (int, int) { return 0, 0 }

// badFlushFromCore: any flush on the serving path is reported, whether or
// not a swap precedes it.
func badFlushFromCore(e *TemplateEngine) {
	e.FlushRecostCache() // want `internal/core must not call FlushRecostCache`
}

// goodAdvanceFromCore is the sanctioned form.
func goodAdvanceFromCore(e *TemplateEngine, st *Store) {
	e.AdvanceEpoch(st)
}

// goodOtherCacheTraffic: only the flush itself is banned.
func goodOtherCacheTraffic(e *TemplateEngine) {
	e.RecostCacheCounters()
}

// allowedFlush: an audited exception still goes through lint:allow.
func allowedFlush(e *TemplateEngine) {
	//lint:allow cacheinvalidation test-only teardown reclaiming memory
	e.FlushRecostCache()
}
