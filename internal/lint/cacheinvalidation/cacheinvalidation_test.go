package cacheinvalidation_test

import (
	"testing"

	"repro/internal/lint/cacheinvalidation"
	"repro/internal/lint/linttest"
)

func TestCacheInvalidation(t *testing.T) {
	linttest.Run(t, cacheinvalidation.Analyzer, "a", "internal/core")
}
