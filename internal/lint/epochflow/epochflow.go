// Package epochflow machine-checks the statistics-epoch discipline
// introduced with online revalidation (docs/EPOCHS.md): every cached
// artifact carries the epoch of the statistics it was computed under, and
// a re-cost from one generation is never compared against anchor costs
// from another.
//
// Two checks:
//
//  1. Epoch plumbing. A composite literal of an epoch-bearing struct
//     (anchor, recostKey, Decision, cacheSnapshot, ...) that sets other
//     fields but omits the epoch field silently pins the zero epoch to
//     the artifact — it would never match the current generation, or
//     worse, match epoch 0 forever. Positional literals necessarily set
//     every field and pass; empty literals are zero-value scaffolding and
//     pass too.
//
//  2. Cross-generation cost comparisons. Using the ssalite IR, values are
//     tainted three ways: RECOST (results of the re-costing entry
//     points), ANCHOR (loads of the c/s statistics of an epoch-bearing
//     anchor struct), and EPOCH (epoch ids themselves). A comparison or
//     ratio mixing a RECOST value with an ANCHOR value — the R = Recost/C
//     family — inside a function that never performs an epoch guard (an
//     ==/!= on an EPOCH-tainted value) is reported: without the guard the
//     recost may be from a newer statistics generation than the anchor.
//
// The check is scoped to the cost-bearing packages (core, engine) and
// their fixtures.
package epochflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/lintutil"
	"repro/internal/lint/ssalite"
)

var Analyzer = &analysis.Analyzer{
	Name:     "epochflow",
	Doc:      "check that statistics epochs propagate into cached artifacts and guard every recost-vs-anchor cost comparison",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ssalite.Analyzer},
	Run:      run,
}

// scope lists the package path segments the check applies to.
var scope = []string{"core", "engine"}

// recostFuncs are the re-costing entry points whose results are RECOST
// tainted. recostEpochFuncs additionally return the epoch the recost was
// computed under as their second result.
var (
	recostFuncs = map[string]bool{
		"Recost": true, "RecostWith": true, "RecostPlanWith": true,
		"recostWith": true, "recostWithEpoch": true, "safeRecost": true,
	}
	recostEpochFuncs = map[string]bool{"recostWithEpoch": true}
	// epochFuncs return the current statistics epoch.
	epochFuncs = map[string]bool{
		"EpochID": true, "StatsEpoch": true, "RecostEpoch": true,
		"statsEpoch": true, "prepareEpoch": true,
	}
)

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgInScope(pass.Pkg.Path(), scope) {
		return nil, nil
	}
	lintutil.ReportAllowMisuse(pass)
	checkLiterals(pass)
	checkComparisons(pass)
	return nil, nil
}

// ---- check 1: epoch-bearing literals set their epoch field ----

func checkLiterals(pass *analysis.Pass) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CompositeLit)(nil)}, func(n ast.Node) {
		lit := n.(*ast.CompositeLit)
		if len(lit.Elts) == 0 || lintutil.InTestFile(pass, lit.Pos()) {
			return
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok {
			return
		}
		st, name := epochStruct(tv.Type)
		if st == nil {
			return
		}
		epochField := ""
		for i := 0; i < st.NumFields(); i++ {
			if isEpochName(st.Field(i).Name()) {
				epochField = st.Field(i).Name()
			}
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				// Positional literal: every field, epoch included, is set.
				return
			}
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == epochField {
				return
			}
		}
		lintutil.Report(pass, lit.Pos(),
			"composite literal of %s omits its %s field: cached artifacts must carry the statistics epoch they were computed under",
			name, epochField)
	})
}

// epochStruct returns the struct type and display name if t (possibly a
// pointer) is a named struct with an epoch field.
func epochStruct(t types.Type) (*types.Struct, string) {
	if t == nil {
		return nil, ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil, ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isEpochName(st.Field(i).Name()) {
			return st, n.Obj().Name()
		}
	}
	return nil, ""
}

func isEpochName(name string) bool { return name == "epoch" || name == "Epoch" }

// ---- check 2: recost-vs-anchor comparisons carry an epoch guard ----

// taintKind is a bitset of the three taint families.
type taintKind uint8

const (
	tRecost taintKind = 1 << iota
	tAnchor
	tEpoch
)

var comparisonOps = map[token.Token]bool{
	token.QUO: true, token.LSS: true, token.GTR: true,
	token.LEQ: true, token.GEQ: true, token.EQL: true, token.NEQ: true,
}

func checkComparisons(pass *analysis.Pass) {
	ssa := pass.ResultOf[ssalite.Analyzer].(*ssalite.SSA)
	for _, fn := range ssa.Funcs {
		if fn.Incomplete || len(fn.Blocks) == 0 {
			continue
		}
		if pos := funcPos(fn); pos.IsValid() && lintutil.InTestFile(pass, pos) {
			continue
		}
		taint := taintFunction(fn)

		// An epoch guard anywhere in the function (or, for a literal, its
		// enclosing function chain) covers its comparisons: the code is
		// epoch-aware and the exact branch structure is its business.
		guarded := false
		for f := fn; f != nil && !guarded; f = f.Parent {
			g := taint
			if f != fn {
				g = taintFunction(f)
			}
			f.Instrs(func(in ssalite.Instruction) {
				b, ok := in.(*ssalite.BinOp)
				if ok && (b.Op == token.EQL || b.Op == token.NEQ) &&
					(g[b.X]&tEpoch != 0 || g[b.Y]&tEpoch != 0) {
					guarded = true
				}
			})
		}
		if guarded {
			continue
		}
		fn.Instrs(func(in ssalite.Instruction) {
			b, ok := in.(*ssalite.BinOp)
			if !ok || !comparisonOps[b.Op] {
				return
			}
			x, y := taint[b.X], taint[b.Y]
			if (x&tRecost != 0 && y&tAnchor != 0) || (x&tAnchor != 0 && y&tRecost != 0) {
				lintutil.Report(pass, in.Pos(),
					"re-cost result compared against anchor statistics without an epoch guard: a recost from one statistics generation must not meet costs from another")
			}
		})
	}
}

// taintFunction computes the flow-insensitive taint of every value in fn.
func taintFunction(fn *ssalite.Function) map[ssalite.Value]taintKind {
	vals := map[ssalite.Value]taintKind{}
	cells := map[*ssalite.Cell]taintKind{}
	for _, c := range fn.Cells() {
		if c.IsParam && c.Obj != nil && isEpochParam(c.Obj.Name()) {
			cells[c] |= tEpoch
		}
	}
	for changed := true; changed; {
		changed = false
		mark := func(v ssalite.Value, k taintKind) {
			if v == nil || k == 0 {
				return
			}
			if vals[v]&k != k {
				vals[v] |= k
				changed = true
			}
		}
		fn.Instrs(func(in ssalite.Instruction) {
			switch in := in.(type) {
			case *ssalite.Call:
				name := in.CalleeName()
				if recostFuncs[name] {
					mark(in, tRecost)
				}
				if epochFuncs[name] {
					mark(in, tEpoch)
				}
			case *ssalite.Extract:
				if c, ok := in.Tuple.(*ssalite.Call); ok {
					name := c.CalleeName()
					if recostFuncs[name] && in.Index == 0 {
						mark(in, tRecost)
					}
					if recostEpochFuncs[name] && in.Index == 1 {
						mark(in, tEpoch)
					}
				}
				mark(in, vals[in.Tuple])
			case *ssalite.FieldAddr:
				if in.Field != nil {
					if isEpochName(in.Field.Name()) {
						mark(in, tEpoch)
					}
					if isAnchorStat(in) {
						mark(in, tAnchor)
					}
				}
			case *ssalite.Load:
				if c, ok := in.Addr.(*ssalite.Cell); ok {
					mark(in, cells[c])
				} else {
					mark(in, vals[in.Addr])
				}
			case *ssalite.Store:
				if c, ok := in.Addr.(*ssalite.Cell); ok {
					if k := vals[in.Val]; cells[c]&k != k {
						cells[c] |= k
						changed = true
					}
				}
			case *ssalite.BinOp:
				if in.Op != token.EQL && in.Op != token.NEQ {
					mark(in, vals[in.X]|vals[in.Y])
				}
			case *ssalite.UnOp:
				mark(in, vals[in.X])
			case *ssalite.Convert:
				mark(in, vals[in.X])
			case *ssalite.RangeElem:
				mark(in, vals[in.X])
			case *ssalite.Return:
				// no propagation
			default:
				// Conservatively merge operand taint into any other
				// value-producing instruction (IndexAddr, Slice, Opaque
				// operands, ...), except calls: a call launders taint
				// unless it is a known source.
				if v, ok := in.(ssalite.Value); ok {
					var k taintKind
					for _, op := range in.Operands() {
						k |= vals[op]
					}
					mark(v, k)
				}
			}
			// Opaque values appear only as operands; flow taint through.
			for _, op := range in.Operands() {
				if oq, ok := op.(*ssalite.Opaque); ok {
					var k taintKind
					for _, inner := range oq.Ops {
						k |= vals[inner]
					}
					mark(oq, k)
				}
			}
		})
	}
	return vals
}

// isAnchorStat reports whether fa loads a cost/selectivity statistic
// (c or s, either case) from an epoch-bearing struct: the anchor shape.
func isAnchorStat(fa *ssalite.FieldAddr) bool {
	switch strings.ToLower(fa.Field.Name()) {
	case "c", "s":
	default:
		return false
	}
	var base types.Type
	if fa.X != nil {
		base = fa.X.Type()
	}
	st, _ := epochStruct(base)
	return st != nil
}

func isEpochParam(name string) bool {
	l := strings.ToLower(name)
	return l == "epoch" || strings.HasSuffix(l, "epoch")
}

func funcPos(fn *ssalite.Function) token.Pos {
	switch {
	case fn.Decl != nil:
		return fn.Decl.Pos()
	case fn.Lit != nil:
		return fn.Lit.Pos()
	}
	return token.NoPos
}
