// Package core models the statistics-epoch discipline for the epochflow
// analyzer: epoch-bearing artifacts (anchors, recost-cache keys,
// decisions) must carry the epoch they were computed under, and every
// recost-vs-anchor cost comparison must sit behind an epoch guard.
package core

type anchor struct {
	c, s  float64
	epoch uint64
}

type Decision struct {
	PlanID string
	Cost   float64
	Epoch  uint64
}

type recostKey struct {
	fp    string
	epoch uint64
}

type store struct {
	cur uint64
}

func (st *store) statsEpoch() uint64 { return st.cur }

func recostWithEpoch(fp string) (float64, uint64, error) { return 1, 0, nil }

func Recost(fp string) float64 { return 1 }

// Literals carrying their epoch: compliant.
func mkOK(st *store) (*Decision, recostKey, anchor) {
	d := &Decision{PlanID: "p", Cost: 1, Epoch: st.statsEpoch()}
	k := recostKey{fp: "f", epoch: st.statsEpoch()}
	a := anchor{c: 1, s: 1, epoch: st.statsEpoch()}
	return d, k, a
}

// Positional literals set every field, the epoch included: compliant.
func mkPositional() anchor { return anchor{1, 1, 7} }

// Zero-value scaffolding: compliant.
func mkZero() anchor { return anchor{} }

// Omitting the epoch pins the artifact to generation zero forever.
func mkBad() (*Decision, recostKey) {
	d := &Decision{PlanID: "p", Cost: 1} // want `composite literal of Decision omits its Epoch field`
	k := recostKey{fp: "f"}              // want `composite literal of recostKey omits its epoch field`
	return d, k
}

// guarded is the getPlan shape: the recost's epoch is checked against the
// anchor's before the ratio test. Compliant.
func guarded(a anchor, lam float64) bool {
	newCost, recEpoch, err := recostWithEpoch("f")
	if err != nil || recEpoch != a.epoch {
		return false
	}
	r := newCost / a.c
	return r <= lam/a.s
}

// guardedByParam receives the current epoch and checks it: compliant.
func guardedByParam(a anchor, epoch uint64) bool {
	if epoch != a.epoch {
		return false
	}
	return Recost("f") < a.c
}

// unguarded divides a fresh recost by an anchor cost with no epoch check:
// the recost may be from a newer statistics generation than the anchor.
func unguarded(a anchor) bool {
	newCost := Recost("f")
	r := newCost / a.c // want `re-cost result compared against anchor statistics without an epoch guard`
	return r < 2
}

// bootstrap compares across generations on purpose while seeding; the
// allow records the reason.
func bootstrap(a anchor) bool {
	c := Recost("f")
	return c < a.c //lint:allow epochflow seeding compares against the previous generation by design
}

var (
	_ = mkOK
	_ = mkPositional
	_ = mkZero
	_ = mkBad
	_ = guarded
	_ = guardedByParam
	_ = unguarded
	_ = bootstrap
)
