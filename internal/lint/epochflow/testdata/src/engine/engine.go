// Package engine seeds the regression epochflow exists to catch: the
// minCostPlan cost-ratio comparison with its epoch guard deliberately
// removed. The recost may now come from a newer statistics generation
// than the anchor it is divided by.
package engine

type anchor struct {
	c, s  float64
	epoch uint64
}

type candidate struct {
	a anchor
	l float64
}

func recostWithEpoch(fp string) (float64, uint64, error) { return 1, 0, nil }

// MinCostPlan lost its `recEpoch != c.a.epoch` guard — the seeded bug.
func MinCostPlan(cands []candidate, lam float64) int {
	for i, c := range cands {
		newCost, _, err := recostWithEpoch("fp")
		if err != nil {
			continue
		}
		r := newCost / c.a.c    // want `re-cost result compared against anchor statistics without an epoch guard`
		if r*c.l <= lam/c.a.s { // want `re-cost result compared against anchor statistics without an epoch guard`
			return i
		}
	}
	return -1
}
