package epochflow_test

import (
	"testing"

	"repro/internal/lint/epochflow"
	"repro/internal/lint/linttest"
)

func TestEpochFlow(t *testing.T) {
	linttest.Run(t, epochflow.Analyzer, "core")
}

// TestSeededRegression proves the analyzer catches the defect class it
// was built for: the minCostPlan ratio test with its epoch guard removed.
func TestSeededRegression(t *testing.T) {
	linttest.Run(t, epochflow.Analyzer, "engine")
}
