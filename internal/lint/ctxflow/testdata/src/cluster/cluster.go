// Fixture for the ctxflow analyzer: "cluster" is the epoch coordinator —
// every push, probe, and retry sleep must descend from the caller's
// context so Run's cancellation actually stops in-flight RPCs.
package cluster

import "context"

// goodPushLoop threads the coordinator context through every retry.
func goodPushLoop(ctx context.Context, attempts int) error {
	for i := 0; i < attempts; i++ {
		if err := rpc(ctx); err == nil {
			return nil
		}
	}
	return ctx.Err()
}

// badRetryContext conjures a root context for the retry, so cancelling
// the coordinator leaves the RPC running to its full timeout.
func badRetryContext(attempts int) error {
	for i := 0; i < attempts; i++ {
		ctx := context.Background() // want `context.Background\(\) on a request path severs cancellation`
		if err := rpc(ctx); err == nil {
			return nil
		}
	}
	return nil
}

// badProbeTODO is the same severance through TODO.
func badProbeTODO() error {
	return rpc(context.TODO()) // want `context.TODO\(\) on a request path severs cancellation`
}

// allowedDetachedCatchUp is the audited pattern: a rejoining node's
// catch-up replay outlives the probe tick that discovered it.
func allowedDetachedCatchUp() error {
	//lint:allow ctxflow catch-up replay must outlive the probe tick
	ctx := context.Background()
	return rpc(ctx)
}

func rpc(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
