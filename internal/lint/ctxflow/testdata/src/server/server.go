// Fixture for the ctxflow analyzer: "server" is a request-path package.
package server

import "context"

// goodThreaded accepts the caller's context.
func goodThreaded(ctx context.Context) error {
	return work(ctx)
}

// badBackground conjures a root context mid-path.
func badBackground() error {
	ctx := context.Background() // want `context.Background\(\) on a request path severs cancellation`
	return work(ctx)
}

// badTODO is no better.
func badTODO() error {
	return work(context.TODO()) // want `context.TODO\(\) on a request path severs cancellation`
}

// allowedBackground is the audited detached-work pattern.
func allowedBackground() error {
	//lint:allow ctxflow detached janitor work must outlive the request
	ctx := context.Background()
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// goodShedWait threads the request context into the slot wait, so a
// caller that gives up releases its queue position immediately.
func goodShedWait(ctx context.Context, sem chan struct{}) bool {
	select {
	case sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// badShedWait severs the request from its caller while queueing for an
// in-flight slot: the shed path would wait out the full queue budget even
// after the client disconnected.
func badShedWait(sem chan struct{}) bool {
	ctx := context.Background() // want `context.Background\(\) on a request path severs cancellation`
	select {
	case sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}
