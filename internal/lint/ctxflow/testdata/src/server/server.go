// Fixture for the ctxflow analyzer: "server" is a request-path package.
package server

import "context"

// goodThreaded accepts the caller's context.
func goodThreaded(ctx context.Context) error {
	return work(ctx)
}

// badBackground conjures a root context mid-path.
func badBackground() error {
	ctx := context.Background() // want `context.Background\(\) on a request path severs cancellation`
	return work(ctx)
}

// badTODO is no better.
func badTODO() error {
	return work(context.TODO()) // want `context.TODO\(\) on a request path severs cancellation`
}

// allowedBackground is the audited detached-work pattern.
func allowedBackground() error {
	//lint:allow ctxflow detached janitor work must outlive the request
	ctx := context.Background()
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
