// Fixture proving scope gating: "tools" is not a request-path package.
package tools

import "context"

func BackgroundIsFineHere() context.Context {
	return context.Background()
}
