// Fixture proving the package-main exemption: creating the root context is
// main's job, even in an in-scope directory.
package main

import "context"

func main() {
	_ = context.Background()
}
