// Package ctxflow checks that context.Context is threaded through the
// serving request paths instead of being synthesized mid-path with
// context.Background() or context.TODO(). SCR's Process observes
// cancellation before optimizer calls and while waiting on shared flights;
// a Background() conjured inside internal/core, internal/server or the
// harness severs that chain, so request timeouts silently stop applying to
// everything below the break.
//
// Scope: request-path packages only (configurable). Package main and
// _test.go files are exempt — creating the root context is their job.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background()/TODO() inside request-path packages; " +
		"thread the caller's context instead",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var scope = "core,server,harness,cluster"

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", scope,
		"comma-separated package path segments the analyzer applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	if !lintutil.PkgInScope(pass.Pkg.Path(), strings.Split(scope, ",")) {
		return nil, nil
	}
	lintutil.ReportAllowMisuse(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if lintutil.InTestFile(pass, call.Pos()) {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			lintutil.Report(pass, call.Pos(),
				"context.%s() on a request path severs cancellation; accept a ctx parameter and thread the caller's context", fn.Name())
		}
	})
	return nil, nil
}
