// Package memo is a fixture stub of repro/internal/memo: just enough
// surface for the envpool analyzer's type matching.
package memo

type Env struct{ X int }

type Optimizer struct{}

func (o *Optimizer) PrepareEnv(dims int) (*Env, error) { return &Env{}, nil }

func (o *Optimizer) ReleaseEnv(e *Env) {}
