// Package engine is a fixture stub of repro/internal/engine: just enough
// surface for the envpool analyzer's type matching.
package engine

type PreparedInstance struct{ N int }

func (pi *PreparedInstance) Release() {}

func (pi *PreparedInstance) Recost(x int) (float64, error) { return 0, nil }

type TemplateEngine struct{}

func (e *TemplateEngine) PrepareRecost(sv []float64) (*PreparedInstance, error) {
	return &PreparedInstance{}, nil
}
