// Fixture exercising the envpool analyzer: pooled values must be released
// on every path and must not escape the acquiring function.
package a

import (
	"engine"
	"memo"
)

type holder struct {
	env *memo.Env
	pi  *engine.PreparedInstance
}

// goodDefer releases via defer: the repo idiom.
func goodDefer(o *memo.Optimizer) error {
	e, err := o.PrepareEnv(3)
	if err != nil {
		return err
	}
	defer o.ReleaseEnv(e)
	use(e)
	return nil
}

// goodManualAllPaths releases manually on every path.
func goodManualAllPaths(eng *engine.TemplateEngine, cond bool) error {
	pi, err := eng.PrepareRecost(nil)
	if err != nil {
		return err
	}
	if cond {
		_, _ = pi.Recost(1)
		pi.Release()
		return nil
	}
	pi.Release()
	return nil
}

// goodLoopReacquire re-prepares per iteration, releasing before the next.
func goodLoopReacquire(eng *engine.TemplateEngine, n int) {
	for i := 0; i < n; i++ {
		pi, err := eng.PrepareRecost(nil)
		if err != nil {
			return
		}
		_, _ = pi.Recost(i)
		pi.Release()
	}
}

// badLeakOnBranch forgets the release on the early-return branch.
func badLeakOnBranch(eng *engine.TemplateEngine, cond bool) error {
	pi, err := eng.PrepareRecost(nil) // want `pooled pi acquired here may not be released on every path`
	if err != nil {
		return err
	}
	if cond {
		return nil // leaks pi
	}
	pi.Release()
	return nil
}

// badNeverReleased never releases at all.
func badNeverReleased(o *memo.Optimizer) error {
	e, err := o.PrepareEnv(2) // want `pooled e acquired here may not be released on every path`
	if err != nil {
		return err
	}
	use(e)
	return nil
}

// badFieldEscape stores the pooled value into a struct field.
func badFieldEscape(o *memo.Optimizer, h *holder) {
	e, err := o.PrepareEnv(2)
	if err != nil {
		return
	}
	defer o.ReleaseEnv(e)
	h.env = e // want `pooled e escapes into a struct field`
}

// badReturnEscape hands the pooled value to a caller that cannot know the
// release contract.
func badReturnEscape(eng *engine.TemplateEngine) *engine.PreparedInstance {
	pi, err := eng.PrepareRecost(nil)
	if err != nil {
		return nil
	}
	defer pi.Release()
	return pi // want `pooled pi escapes via return`
}

// badGoroutineCapture races the release against a goroutine still using the
// value.
func badGoroutineCapture(eng *engine.TemplateEngine) {
	pi, err := eng.PrepareRecost(nil)
	if err != nil {
		return
	}
	defer pi.Release()
	go func() { // want `pooled pi captured by a goroutine`
		_, _ = pi.Recost(1)
	}()
}

// badUseAfterRelease reads the pooled value after returning it to the pool.
func badUseAfterRelease(eng *engine.TemplateEngine) {
	pi, err := eng.PrepareRecost(nil)
	if err != nil {
		return
	}
	_, _ = pi.Recost(1)
	pi.Release()
	_, _ = pi.Recost(2) // want `pooled pi used after release`
}

// badCompositeEscape stores the pooled value into a composite literal.
func badCompositeEscape(o *memo.Optimizer) {
	e, err := o.PrepareEnv(1)
	if err != nil {
		return
	}
	defer o.ReleaseEnv(e)
	_ = holder{env: e} // want `pooled e escapes into a composite literal`
}

// allowedEscape is the pool manager pattern: audited via lint:allow.
func allowedEscape(o *memo.Optimizer, h *holder) {
	e, err := o.PrepareEnv(2)
	if err != nil {
		return
	}
	defer o.ReleaseEnv(e)
	//lint:allow envpool pool manager owns the env lifecycle
	h.env = e
}

func use(e *memo.Env) {}
