// Package envpool checks the pooled-resource discipline of the recost hot
// path: every acquisition of a pooled selectivity environment (*memo.Env via
// PrepareEnv) or batched recosting context (*engine.PreparedInstance via
// PrepareRecost) must be paired with its release on every path to function
// exit, and the pooled value must not escape the acquiring function into
// struct fields, goroutines, channels, composite literals or return values —
// any of which permits use-after-release, the failure mode sync.Pool turns
// into silent data corruption (docs/PERF.md).
package envpool

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "envpool",
	Doc: "check that pooled memo.Env / engine.PreparedInstance values are " +
		"released on every path and never escape the acquiring function",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

// pooledType reports whether t is one of the pooled hot-path types:
// *memo.Env or *engine.PreparedInstance (package matched by final path
// segment so analysis fixtures can declare local stubs).
func pooledType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Name() {
	case "Env":
		return lintutil.PkgInScope(obj.Pkg().Path(), []string{"memo"})
	case "PreparedInstance":
		return lintutil.PkgInScope(obj.Pkg().Path(), []string{"engine"})
	}
	return false
}

// acquisition is one tracked `x[, err] := ...Prepare...(...)` site.
type acquisition struct {
	assign *ast.AssignStmt
	obj    types.Object // the pooled variable
	errObj types.Object // the paired error variable, if any
}

func run(pass *analysis.Pass) (any, error) {
	lintutil.ReportAllowMisuse(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		var body *ast.BlockStmt
		var g *cfg.CFG
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
			g = cfgs.FuncDecl(fn)
		case *ast.FuncLit:
			body = fn.Body
			g = cfgs.FuncLit(fn)
		}
		if body == nil || g == nil {
			return
		}
		checkFunc(pass, body, g)
	})
	return nil, nil
}

// checkFunc runs the pairing and escape checks over one function body.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, g *cfg.CFG) {
	acqs := findAcquisitions(pass, body)
	if len(acqs) == 0 {
		return
	}
	for _, acq := range acqs {
		checkEscapes(pass, body, acq)
		checkReleased(pass, body, g, acq, acqs)
		checkUseAfterRelease(pass, g, acq)
	}
}

// acquirers are the pool entry points (and the repo's unexported wrappers
// around them). Plain constructors such as NewEnv return unpooled values
// with ordinary GC lifetimes, so only these names start the pairing check.
var acquirers = map[string]bool{
	"PrepareEnv": true, "PrepareRecost": true,
	"prepareEnv": true, "prepareRecost": true,
}

// findAcquisitions collects assignments whose RHS call yields a pooled value,
// skipping nested function literals (they get their own checkFunc pass).
func findAcquisitions(pass *analysis.Pass, body *ast.BlockStmt) []acquisition {
	var out []acquisition
	inspectShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !acquirers[calleeName(call)] {
			return
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil || !pooledType(obj.Type()) {
				continue
			}
			acq := acquisition{assign: as, obj: obj}
			// Remember the paired error variable of `x, err := ...` so the
			// release check can exempt the acquisition-failure branch.
			for j, other := range as.Lhs {
				if j == i {
					continue
				}
				if oid, ok := other.(*ast.Ident); ok && oid.Name != "_" {
					if oobj := objOf(pass, oid); oobj != nil && isErrorType(oobj.Type()) {
						acq.errObj = oobj
					}
				}
			}
			out = append(out, acq)
		}
	})
	return out
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

func isErrorType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

// inspectShallow walks body without descending into nested function
// literals.
func inspectShallow(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// usesObj reports whether n mentions acq's pooled variable.
func usesObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isReleaseOf reports whether n (or a call within it) releases obj:
// obj.Release() or <any>.ReleaseEnv(obj) / ReleaseEnv(obj).
func isReleaseOf(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		name := calleeName(call)
		switch name {
		case "Release":
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
		case "ReleaseEnv":
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkReleased verifies that every path from the acquisition to function
// exit passes a release of the pooled value. A deferred release anywhere in
// the function satisfies the check (the repo idiom defers immediately after
// acquiring); the error branch of the acquisition's own `if err != nil`
// check is exempt because a failed Prepare returns no pooled value.
func checkReleased(pass *analysis.Pass, body *ast.BlockStmt, g *cfg.CFG, acq acquisition, all []acquisition) {
	obj := acq.obj
	// Deferred release (directly or inside a deferred closure)?
	deferred := false
	inspectDefers(body, func(d *ast.DeferStmt) {
		if isReleaseOf(pass, d.Call, obj) {
			deferred = true
		}
	})
	if !deferred {
		// Deferred closures: defer func() { ... Release ... }().
		ast.Inspect(body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok && isReleaseOf(pass, d.Call, obj) {
				deferred = true
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				if parentIsDefer(body, lit) && isReleaseOf(pass, lit.Body, obj) {
					deferred = true
				}
			}
			return !deferred
		})
	}
	if deferred {
		return
	}

	blk, idx, ok := lintutil.FindNode(g, acq.assign)
	if !ok {
		return
	}
	stop := func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false // non-matching defer; matching ones handled above
		}
		return isReleaseOf(pass, n, obj)
	}
	// Re-acquisition into the same variable bounds the walk: a loop body
	// that re-prepares each iteration is checked from each acquisition.
	boundary := func(n ast.Node) bool {
		for _, other := range all {
			if other.assign == n && other.obj == obj && other.assign != acq.assign {
				return true
			}
		}
		return n == acq.assign
	}
	skip := errBranchSkipper(pass, acq)
	if pos, leak := lintutil.LeaksToExit(blk, idx+1, stop, skip, boundary); leak {
		at := acq.assign.Pos()
		detail := ""
		if pos.IsValid() {
			p := pass.Fset.Position(pos)
			detail = " (path escaping near line " + itoa(p.Line) + ")"
		}
		lintutil.Report(pass, at, "pooled %s acquired here may not be released on every path%s; release it or defer the release", obj.Name(), detail)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func inspectDefers(body *ast.BlockStmt, f func(*ast.DeferStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			f(d)
		}
		return true
	})
}

func parentIsDefer(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	is := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if fl, ok := d.Call.Fun.(*ast.FuncLit); ok && fl == lit {
				is = true
			}
		}
		return !is
	})
	return is
}

// errBranchSkipper exempts the `if err != nil` failure branch of the
// acquisition itself: on that path Prepare returned no pooled value.
func errBranchSkipper(pass *analysis.Pass, acq acquisition) func(from, to *cfg.Block) bool {
	if acq.errObj == nil {
		return nil
	}
	return func(from, to *cfg.Block) bool {
		ifStmt, ok := to.Stmt.(*ast.IfStmt)
		if !ok {
			return false
		}
		bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		var errSide ast.Expr
		if isNil(pass, bin.Y) {
			errSide = bin.X
		} else if isNil(pass, bin.X) {
			errSide = bin.Y
		} else {
			return false
		}
		id, ok := errSide.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != acq.errObj {
			return false
		}
		switch {
		case bin.Op == token.NEQ && to.Kind == cfg.KindIfThen:
			return true // if err != nil { <failure> }
		case bin.Op == token.EQL && to.Kind == cfg.KindIfElse:
			return true // if err == nil { ok } else { <failure> }
		}
		return false
	}
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilObj
}

// checkEscapes flags stores of the pooled value into places that outlive the
// acquiring call: struct fields / slice or map elements, channel sends,
// composite literals, return values, and goroutine captures.
func checkEscapes(pass *analysis.Pass, body *ast.BlockStmt, acq acquisition) {
	obj := acq.obj
	inspectShallow(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || pass.TypesInfo.Uses[id] != obj {
					continue
				}
				if i >= len(s.Lhs) {
					continue
				}
				switch s.Lhs[i].(type) {
				case *ast.SelectorExpr:
					lintutil.Report(pass, s.Pos(), "pooled %s escapes into a struct field; it may be reused after release", obj.Name())
				case *ast.IndexExpr:
					lintutil.Report(pass, s.Pos(), "pooled %s escapes into a slice or map element; it may be reused after release", obj.Name())
				}
			}
		case *ast.SendStmt:
			if id, ok := s.Value.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				lintutil.Report(pass, s.Pos(), "pooled %s escapes through a channel send", obj.Name())
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if id, ok := res.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					lintutil.Report(pass, s.Pos(), "pooled %s escapes via return; the caller cannot know it must release it", obj.Name())
				}
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := e.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					lintutil.Report(pass, s.Pos(), "pooled %s escapes into a composite literal", obj.Name())
				}
			}
		case *ast.GoStmt:
			// A closure callee is handled by the dedicated pass below; here
			// only the arguments (and a non-literal callee) count.
			target := ast.Node(s.Call)
			if _, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
				found := false
				for _, arg := range s.Call.Args {
					if usesObj(pass, arg, obj) {
						found = true
					}
				}
				if !found {
					target = nil
				}
			}
			if target != nil && usesObj(pass, target, obj) {
				lintutil.Report(pass, s.Pos(), "pooled %s captured by a goroutine; it may be released while the goroutine runs", obj.Name())
			}
		}
	})
	// Goroutine closures: go func() { ... obj ... }().
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok && usesObj(pass, lit.Body, obj) {
			lintutil.Report(pass, g.Pos(), "pooled %s captured by a goroutine closure; it may be released while the goroutine runs", obj.Name())
		}
		return true
	})
}

// checkUseAfterRelease flags statements that read the pooled value after a
// non-deferred release in the same basic block (the straight-line case; see
// docs/LINT.md for what this deliberately does not catch).
func checkUseAfterRelease(pass *analysis.Pass, g *cfg.CFG, acq acquisition) {
	obj := acq.obj
	for _, blk := range g.Blocks {
		released := -1
		for i, nd := range blk.Nodes {
			if _, isDefer := nd.(*ast.DeferStmt); isDefer {
				continue
			}
			if released >= 0 && nd != acq.assign && usesObj(pass, nd, obj) {
				lintutil.Report(pass, nd.Pos(), "pooled %s used after release", obj.Name())
				break
			}
			if isReleaseOf(pass, nd, obj) {
				released = i
			}
		}
	}
}
