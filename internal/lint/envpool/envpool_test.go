package envpool_test

import (
	"testing"

	"repro/internal/lint/envpool"
	"repro/internal/lint/linttest"
)

func TestEnvPool(t *testing.T) {
	linttest.Run(t, envpool.Analyzer, "a")
}
