package lockdiscipline_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, lockdiscipline.Analyzer, "a", "breaker", "hotpath", "revalpath", "coordpath")
}
