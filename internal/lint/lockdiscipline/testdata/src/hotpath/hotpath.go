// Fixture exercising the hot-path read-lock rule: since the RCU refactor,
// nothing reachable from Process/getPlan/minCostPlan may acquire a read
// lock — the serving path reads the published snapshot, lock-free.
package hotpath

import "sync"

type SCR struct {
	mu sync.RWMutex
	n  int
}

// rlock is the wait-counting wrapper; the analyzer treats a call to it as
// RLock on the receiver. Its own body is not reported — the call site is.
func (s *SCR) rlock() { s.mu.RLock() }

// Process is a hot root: a direct read-lock acquisition is flagged.
func (s *SCR) Process(x int) int {
	s.mu.RLock() // want `read lock acquired on the Process hot path`
	n := s.n
	s.mu.RUnlock()
	return n + s.getPlan(x)
}

// getPlan is itself a hot root (diagnostics in a root's own body attribute
// to that root, not to the caller); the rlock wrapper counts as a read lock.
func (s *SCR) getPlan(x int) int {
	s.rlock() // want `read lock acquired on the getPlan hot path`
	defer s.mu.RUnlock()
	return s.n + s.rank(x)
}

// rank is not a root, but getPlan calls it: flagged transitively.
func (s *SCR) rank(x int) int {
	s.mu.RLock() // want `read lock acquired on the getPlan hot path \(in rank\)`
	defer s.mu.RUnlock()
	return s.n * x
}

// Stats is off the hot-path call graph: read locks are fine here.
func (s *SCR) Stats() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// minCostPlan carries an audited exception: the allow comment (with its
// mandatory reason) suppresses the diagnostic on the next line.
func (s *SCR) minCostPlan() int {
	//lint:allow lockdiscipline audited cold ranking pass, not per-request
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}
