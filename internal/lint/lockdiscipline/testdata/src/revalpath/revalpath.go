// Fixture exercising the hot-path read-lock rule for the roots added in
// the revalidation era: Revalidate's lag walk, revalidateEntry, and the
// degraded-fallback ranking rankFallback all run concurrently with
// foreground Process traffic over the published snapshot, so a read-lock
// acquisition anywhere in their call graphs is flagged the same way.
package revalpath

import "sync"

type SCR struct {
	mu    sync.RWMutex
	insts []int
}

func (s *SCR) rlock() { s.mu.RLock() }

// Revalidate is a hot root: the lag walk must read the snapshot, not the
// lock-protected master state.
func (s *SCR) Revalidate() int {
	s.mu.RLock() // want `read lock acquired on the Revalidate hot path`
	n := len(s.insts)
	s.mu.RUnlock()
	for _, e := range s.insts {
		n += s.reanchor(e)
	}
	return n
}

// reanchor is not a root, but Revalidate calls it: flagged transitively,
// attributed to the Revalidate root.
func (s *SCR) reanchor(e int) int {
	s.rlock() // want `read lock acquired on the Revalidate hot path \(in reanchor\)`
	defer s.mu.RUnlock()
	return e
}

// revalidateEntry is itself a root (per-entry worker body); the rlock
// wait-counting wrapper counts as a read lock.
func (s *SCR) revalidateEntry(e int) int {
	s.rlock() // want `read lock acquired on the revalidateEntry hot path`
	defer s.mu.RUnlock()
	return e + len(s.insts)
}

// rankFallback is a root: degraded-mode serving ranks fallback plans while
// foreground readers are live, so it is lock-free too.
func (s *SCR) rankFallback(pes []int) int {
	best := 0
	for _, pe := range pes {
		s.mu.RLock() // want `read lock acquired on the rankFallback hot path`
		if pe > best {
			best = pe
		}
		s.mu.RUnlock()
	}
	return best
}

// report is off every hot-path call graph: read locks are fine here.
func (s *SCR) report() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.insts)
}
