// Fixture exercising lockdiscipline on the resilience layer's patterns
// (PR4): circuit breaker state transitions and load-shedding bookkeeping.
// Breaker state changes are tiny mutex sections that must never span an
// engine call — an optimizer call under the breaker mutex would serialize
// every miss behind a plan search, exactly the convoy the breaker exists
// to prevent.
package breaker

import "sync"

type Engine struct{}

func (e *Engine) Optimize(sv []float64) {}

type breaker struct {
	mu          sync.Mutex
	state       int
	consecFails int
}

type SCR struct {
	mu      sync.RWMutex
	eng     *Engine
	breaker *breaker
	n       int
}

// goodRecordFailure is the idiomatic transition: defer-released and free
// of engine calls.
func (b *breaker) goodRecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if b.consecFails >= 3 {
		b.state = 1
	}
}

// goodCallThenRecord keeps the engine call outside both the SCR write
// lock and the breaker mutex, recording the outcome afterwards.
func goodCallThenRecord(s *SCR) {
	s.eng.Optimize(nil)
	s.breaker.mu.Lock()
	s.breaker.consecFails = 0
	s.breaker.mu.Unlock()
}

// badProbeUnderBreakerMutex holds the breaker mutex across the half-open
// probe's optimizer call.
func badProbeUnderBreakerMutex(s *SCR) {
	s.breaker.mu.Lock()
	s.eng.Optimize(nil) // want `Optimize called while the write lock is held`
	s.breaker.mu.Unlock()
}

// badRecordUnderSCRWriteLock runs a breaker-gated optimizer call while
// still holding the SCR write lock (e.g. recording a degraded decision
// inside the cache-management section).
func badRecordUnderSCRWriteLock(s *SCR) {
	s.mu.Lock()
	s.n++
	s.eng.Optimize(nil) // want `Optimize called while the write lock is held`
	s.mu.Unlock()
}

// badShedAccounting leaks the breaker mutex on the early return: shed
// bookkeeping must use defer like any other multi-return section.
func badShedAccounting(b *breaker, overloaded bool) int {
	b.mu.Lock()
	if overloaded {
		b.mu.Unlock() // want `manual Unlock in badShedAccounting, which has 2 return statements`
		return 429
	}
	b.mu.Unlock()
	return 200
}
