// Fixture exercising the lockdiscipline analyzer: the SCR RWMutex protocol.
package a

import "sync"

type Engine struct{}

func (e *Engine) Optimize(sv []float64) {}

func (e *Engine) Recost(x int) float64 { return 0 }

func (e *Engine) Lookup(x int) int { return x }

type SCR struct {
	mu  sync.RWMutex
	eng *Engine
	n   int
}

// lock is the repo's lock-wait-counting wrapper; the analyzer treats it as
// Lock on the receiver.
func (s *SCR) lock() { s.mu.Lock() }

// rlock mirrors lock for readers.
func (s *SCR) rlock() { s.mu.RLock() }

// goodDeferWrite is the idiomatic write section.
func goodDeferWrite(s *SCR) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		return 1
	}
	return 0
}

// goodShortRead is a single-return manual read section: allowed.
func goodShortRead(s *SCR) int {
	s.mu.RLock()
	n := s.n
	s.mu.RUnlock()
	return n
}

// goodBlockingOutside moves the engine call outside the critical section.
func goodBlockingOutside(s *SCR) {
	sv := []float64{0.5}
	s.eng.Optimize(sv)
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// goodNonBlockingUnderLock: not every engine method is a blocking call.
func goodNonBlockingUnderLock(s *SCR) {
	s.mu.Lock()
	s.n = s.eng.Lookup(s.n)
	s.mu.Unlock()
}

// badBlockingUnderWriteLock holds the write lock across an optimizer call.
func badBlockingUnderWriteLock(s *SCR) {
	s.mu.Lock()
	s.eng.Optimize(nil) // want `Optimize called while the write lock is held`
	s.mu.Unlock()
}

// badBlockingViaWrapper: the lock() wrapper counts as Lock.
func badBlockingViaWrapper(s *SCR) {
	s.lock()
	_ = s.eng.Recost(1) // want `Recost called while the write lock is held`
	s.mu.Unlock()
}

// badUpgrade self-deadlocks under Go's writer-preferring RWMutex.
func badUpgrade(s *SCR) {
	s.mu.RLock()
	s.mu.Lock() // want `RLock→Lock upgrade`
	s.mu.Unlock()
	s.mu.RUnlock()
}

// badReturnHeld leaks the write lock on the early return.
func badReturnHeld(s *SCR, cond bool) int {
	s.mu.Lock()
	if cond {
		return 1 // want `return with the write lock still held`
	}
	s.mu.Unlock() // want `manual Unlock in badReturnHeld, which has 2 return statements`
	return 0
}

// badManualMultiReturn releases on every path today, but every new return is
// a leak waiting to happen.
func badManualMultiReturn(s *SCR, cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock() // want `manual Unlock in badManualMultiReturn, which has 2 return statements`
		return 1
	}
	s.mu.Unlock()
	return 0
}

// allowedManual is the audited tight-section pattern.
func allowedManual(s *SCR, cond bool) int {
	s.mu.Lock()
	if cond {
		//lint:allow lockdiscipline audited tight section; both paths release
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}
