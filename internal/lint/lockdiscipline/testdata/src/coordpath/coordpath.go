// Fixture exercising the coordinator-loop lock rule: the epoch
// coordinator's rpc* helpers block for a network round trip (retries,
// backoff), so calling one while the coordinator's write lock is held
// convoys every probe and status reader behind a slow member.
package coordpath

import "sync"

type client struct{}

func (c *client) rpcPushEpoch(url string) (uint64, error)  { return 0, nil }
func (c *client) rpcHealthz(url string) error              { return nil }
func (c *client) rpcClusterStatus(url string) (int, error) { return 0, nil }
func (c *client) rpcAdminEpochs(url string) (int, error)   { return 0, nil }
func (c *client) rpcGetJSON(url string, out any) error     { return nil }

type Coordinator struct {
	mu    sync.RWMutex
	cl    *client
	acked map[string]uint64
}

// goodPushOutsideLock snapshots the target under the lock, pushes outside
// it, and records the ack in a second short critical section — the shape
// push.go uses.
func goodPushOutsideLock(c *Coordinator, url string) error {
	target := c.nextTarget(url)
	ep, err := c.cl.rpcPushEpoch(url)
	if err != nil {
		return err
	}
	c.recordAck(url, ep, target)
	return nil
}

func (c *Coordinator) nextTarget(url string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked[url] + 1
}

func (c *Coordinator) recordAck(url string, ep, target uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ep > c.acked[url] {
		c.acked[url] = target
	}
}

// badPushUnderLock performs the round trip inside the critical section.
func badPushUnderLock(c *Coordinator, url string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ep, err := c.cl.rpcPushEpoch(url) // want `rpcPushEpoch called while the write lock is held`
	if err != nil {
		return err
	}
	c.acked[url] = ep
	return nil
}

// badProbeUnderLock: probing every member serially under the lock stalls
// the whole status surface for a member timeout apiece.
func badProbeUnderLock(c *Coordinator, urls []string) {
	c.mu.Lock()
	for _, u := range urls {
		_ = c.cl.rpcHealthz(u) // want `rpcHealthz called while the write lock is held`
	}
	c.mu.Unlock()
}

// badRollupUnderLock covers the remaining rpc helpers.
func badRollupUnderLock(c *Coordinator, url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, err := c.cl.rpcClusterStatus(url); err == nil { // want `rpcClusterStatus called while the write lock is held`
		_ = n
	}
	if n, err := c.cl.rpcAdminEpochs(url); err == nil { // want `rpcAdminEpochs called while the write lock is held`
		_ = n
	}
	var out struct{}
	_ = c.cl.rpcGetJSON(url, &out) // want `rpcGetJSON called while the write lock is held`
}
