// Package lockdiscipline checks the lock protocol SCR's concurrent serving
// depends on (docs/PERF.md): no blocking engine call (Optimize / Recost /
// PrepareRecost / Process) while a write lock is held, no RLock→Lock
// upgrades (self-deadlock under Go's writer-preferring RWMutex), no path
// that returns with a lock still held, manual Unlock in multi-return
// functions (where a missed path is one refactor away) is flagged in favor
// of defer, and — since the read path went lock-free — no RLock (or rlock
// wrapper) acquisition anywhere in the Process/getPlan/minCostPlan hot-path
// call graph: the serving path reads the published RCU snapshot and must
// never touch a lock's cache line. An audited exception carries
// `//lint:allow lockdiscipline <reason>`.
//
// The analysis is intraprocedural over each function's CFG; the hot-path
// rule additionally walks a name-based same-package call graph from the
// hot roots. The repo's lock/rlock wrapper methods (which charge lock-wait
// counters) are treated as Lock/RLock on their receiver.
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "check SCR's lock protocol: no blocking engine calls under the " +
		"write lock, no RLock→Lock upgrades, deferred Unlock in multi-return functions, " +
		"no read-lock acquisitions in the lock-free Process hot path",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      run,
}

// blockingCalls are the engine/optimizer entry points that may block for an
// optimizer-call duration; holding the SCR write lock across one convoys
// every reader behind a plan search.
var blockingCalls = map[string]bool{
	"Optimize":       true,
	"Recost":         true,
	"PrepareRecost":  true,
	"RecostWith":     true,
	"RecostPlanWith": true,
	"Process":        true,
	// Coordinator RPCs block for a network round trip (with retries and
	// backoff); holding the coordinator's lock across one stalls probe and
	// status rollups for every other member.
	"rpcPushEpoch":     true,
	"rpcHealthz":       true,
	"rpcClusterStatus": true,
	"rpcAdminEpochs":   true,
	"rpcGetJSON":       true,
}

// wrapperNames are lock-acquisition/release wrapper methods that hold or
// release a lock across their own return on purpose.
var wrapperNames = map[string]bool{
	"lock": true, "rlock": true, "unlock": true, "runlock": true,
	"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true,
}

// hotPathRoots are the serving-path entry points. Since the RCU refactor,
// everything reachable from them (same package) runs lock-free off the
// published snapshot; a read-lock acquisition anywhere in that call graph
// reintroduces the shared reader-count cache line and writer convoys the
// refactor removed. Revalidate's lag walk and the degraded-fallback
// ranking run concurrently with foreground traffic over the same
// snapshot, so they are held to the same rule: a read lock there would
// stall every Process call behind the background sweep.
var hotPathRoots = map[string]bool{
	"Process":         true,
	"getPlan":         true,
	"minCostPlan":     true,
	"Revalidate":      true,
	"revalidateEntry": true,
	"rankFallback":    true,
}

// lockState is the per-mutex abstract state.
type lockState int

const (
	unlocked lockState = iota
	rLocked
	wLocked
)

// mutexOp classifies one lock-related call site.
type mutexOp struct {
	key      types.Object // root object owning the mutex (e.g. the SCR receiver)
	read     bool         // RLock / RUnlock
	acquire  bool         // Lock/RLock vs Unlock/RUnlock
	deferred bool
	call     *ast.CallExpr
}

func run(pass *analysis.Pass) (any, error) {
	lintutil.ReportAllowMisuse(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		g := cfgs.FuncDecl(fd)
		if g == nil {
			return
		}
		checkFunc(pass, fd, g)
	})
	checkHotPath(pass, ins)
	return nil, nil
}

// checkHotPath enforces the lock-free serving-path invariant: no RLock (or
// rlock wrapper) acquisition in any function reachable, via same-package
// calls, from a hotPathRoots entry point. The call graph is name-based and
// intraprocedural — call sites that type-resolve to a function declared in
// this package add an edge — which is sound for the flat method set of the
// core package and cheap enough to run on every build.
func checkHotPath(pass *analysis.Pass, ins *inspector.Inspector) {
	// First pass: declared functions and their same-package callees.
	decls := map[string]*ast.FuncDecl{}
	callees := map[string][]string{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		name := fd.Name.Name
		decls[name] = fd
		ast.Inspect(fd.Body, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = fun
			case *ast.SelectorExpr:
				callee = fun.Sel
			default:
				return true
			}
			if fn, ok := pass.TypesInfo.Uses[callee].(*types.Func); ok && fn.Pkg() == pass.Pkg {
				callees[name] = append(callees[name], fn.Name())
			}
			return true
		})
	})

	// Reachability from the hot roots, visited in sorted order so a
	// function reachable from several roots is attributed deterministically.
	// Lock wrapper bodies are excluded: the acquisition is reported at their
	// call site, where the hot-path context is visible.
	hot := map[string]string{} // function name → root it is reachable from
	roots := make([]string, 0, len(hotPathRoots))
	for r := range hotPathRoots {
		if _, ok := decls[r]; ok {
			roots = append(roots, r)
			hot[r] = r
		}
	}
	sort.Strings(roots)
	var visit func(name, root string)
	visit = func(name, root string) {
		for _, c := range callees[name] {
			if _, seen := hot[c]; seen || wrapperNames[c] {
				continue
			}
			if _, declared := decls[c]; !declared {
				continue
			}
			hot[c] = root
			visit(c, root)
		}
	}
	for _, root := range roots {
		visit(root, root)
	}

	for name, root := range hot {
		fd := decls[name]
		in := ""
		if name != root {
			in = " (in " + name + ")"
		}
		ast.Inspect(fd.Body, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, isLock := classify(pass, call, false); isLock && op.acquire && op.read {
				lintutil.Report(pass, call.Pos(),
					"read lock acquired on the %s hot path%s: the serving path is lock-free by design — read the published snapshot instead, or annotate an audited exception with //lint:allow",
					root, in)
			}
			return true
		})
	}
}

// classify returns the mutexOp for call, or ok=false if it is not a lock
// operation. Recognized: methods Lock/RLock/Unlock/RUnlock on sync.Mutex /
// sync.RWMutex values (usually fields), and this repo's wrapper methods
// lock()/rlock() (lock-wait-counting acquires) and unlock()/runlock()
// (releases — the write-domain unlock also flushes the pending snapshot
// publication) on a receiver owning such a mutex.
func classify(pass *analysis.Pass, call *ast.CallExpr, deferred bool) (mutexOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	op := mutexOp{deferred: deferred, call: call}
	switch sel.Sel.Name {
	case "Lock":
		op.acquire = true
	case "RLock":
		op.acquire, op.read = true, true
	case "Unlock":
	case "RUnlock":
		op.read = true
	case "lock":
		op.acquire = true
	case "rlock":
		op.acquire, op.read = true, true
	case "unlock":
	case "runlock":
		op.read = true
	default:
		return mutexOp{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if !isSyncMutex(pass.TypesInfo.TypeOf(sel.X)) {
			return mutexOp{}, false
		}
	default:
		// Wrapper methods must resolve to a method in this package.
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() != pass.Pkg {
			return mutexOp{}, false
		}
	}
	op.key = rootObj(pass, sel.X)
	if op.key == nil {
		return mutexOp{}, false
	}
	return op, true
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// rootObj resolves the base identifier of a selector chain: s.mu → s.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkFunc runs the dataflow over one function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, g *cfg.CFG) {
	// Collect lock ops per CFG node, plus function-wide facts.
	opsAt := map[ast.Node][]mutexOp{}
	deferredUnlocks := map[types.Object]bool{}
	manualUnlocks := []mutexOp{}
	returns := 0
	hasLockOps := false

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // nested functions are checked separately
		case *ast.ReturnStmt:
			returns++
		case *ast.DeferStmt:
			if op, ok := classify(pass, s.Call, true); ok {
				hasLockOps = true
				if !op.acquire {
					deferredUnlocks[op.key] = true
				}
			}
			return false
		case *ast.CallExpr:
			if op, ok := classify(pass, s, false); ok {
				hasLockOps = true
				opsAt[findStmtNode(g, s)] = append(opsAt[findStmtNode(g, s)], op)
				if !op.acquire {
					manualUnlocks = append(manualUnlocks, op)
				}
			}
		}
		return true
	})
	if !hasLockOps {
		return
	}

	// Style rule: manual Unlock in a function with several return paths.
	if returns >= 2 && len(manualUnlocks) > 0 {
		op := manualUnlocks[0]
		name := "Unlock"
		if op.read {
			name = "RUnlock"
		}
		lintutil.Report(pass, op.call.Pos(),
			"manual %s in %s, which has %d return statements; a new return path can leak the lock — use defer (extract a helper if the critical section must stay small)",
			name, fd.Name.Name, returns)
	}

	// Dataflow: propagate per-key lock states over the CFG.
	type stateMap map[types.Object]lockState
	in := make([]stateMap, len(g.Blocks))
	cloneInto := func(dst, src stateMap) {
		for k, v := range src {
			dst[k] = v
		}
	}
	// merge: conflicting states degrade to the weaker claim (unlocked) so
	// joins never produce false "held" reports.
	merge := func(dst stateMap, src stateMap) bool {
		changed := false
		for k, v := range src {
			if cur, ok := dst[k]; !ok {
				dst[k] = v
				changed = true
			} else if cur != v {
				if cur != unlocked {
					dst[k] = unlocked
					changed = true
				}
			}
		}
		return changed
	}

	reported := map[ast.Node]bool{}
	var apply func(st stateMap, n ast.Node)
	apply = func(st stateMap, n ast.Node) {
		// Lock ops attached to this CFG node.
		for _, op := range opsAt[n] {
			switch {
			case op.acquire && !op.read:
				if st[op.key] == rLocked {
					if !reported[n] {
						reported[n] = true
						lintutil.Report(pass, op.call.Pos(), "RLock→Lock upgrade: Go's RWMutex self-deadlocks when a reader waits for its own writer")
					}
				}
				st[op.key] = wLocked
			case op.acquire && op.read:
				st[op.key] = rLocked
			default:
				st[op.key] = unlocked
			}
		}
		// Blocking engine calls while a write lock is held.
		heldAny := false
		for _, v := range st {
			if v == wLocked {
				heldAny = true
			}
		}
		if heldAny {
			ast.Inspect(n, func(c ast.Node) bool {
				if _, ok := c.(*ast.FuncLit); ok {
					return false
				}
				call, ok := c.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isLockOpCall(pass, call) {
					return true
				}
				if name := methodName(call); blockingCalls[name] && !reported[call] {
					reported[call] = true
					lintutil.Report(pass, call.Pos(), "%s called while the write lock is held; optimizer-call latency convoys every waiting reader — move it outside the critical section", name)
				}
				return true
			})
		}
		// Returning with a lock still held and no deferred unlock. Lock
		// wrapper methods (lock/rlock and friends) return holding the lock
		// by design; their callers are checked instead.
		if ret, ok := n.(*ast.ReturnStmt); ok && !wrapperNames[fd.Name.Name] {
			for k, v := range st {
				if v != unlocked && !deferredUnlocks[k] && !reported[n] {
					reported[n] = true
					lintutil.Report(pass, ret.Pos(), "return with %s still held and no deferred unlock", lockName(v))
				}
			}
		}
	}

	// Iterate to fixpoint.
	for i := range in {
		in[i] = stateMap{}
	}
	work := []int32{0}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := g.Blocks[bi]
		st := stateMap{}
		cloneInto(st, in[bi])
		for _, n := range b.Nodes {
			apply(st, n)
		}
		for _, succ := range b.Succs {
			if merge(in[succ.Index], st) {
				work = append(work, succ.Index)
			}
		}
	}
	// Implicit return at the end of the function: exit blocks with no
	// explicit ReturnStmt still must not hold a lock... except the idiomatic
	// final manual Unlock leaves state clean, so only explicit returns are
	// checked above; the implicit-exit case is covered by the multi-return
	// style rule and the deferred-unlock idiom.
}

func lockName(v lockState) string {
	if v == rLocked {
		return "the read lock"
	}
	return "the write lock"
}

func isLockOpCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	_, ok := classify(pass, call, false)
	return ok
}

func methodName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// findStmtNode maps an expression to the CFG node (statement) containing it,
// by position containment; lock calls appear inside ExprStmts or larger
// statements.
func findStmtNode(g *cfg.CFG, e ast.Expr) ast.Node {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= e.Pos() && e.End() <= n.End() {
				return n
			}
		}
	}
	return e
}
