package costdeterminism_test

import (
	"testing"

	"repro/internal/lint/costdeterminism"
	"repro/internal/lint/linttest"
)

func TestCostDeterminism(t *testing.T) {
	linttest.Run(t, costdeterminism.Analyzer, "cost", "other")
}
