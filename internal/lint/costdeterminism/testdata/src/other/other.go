// Fixture proving scope gating: "other" is not a cost-bearing package, so
// nothing here is flagged.
package other

import "time"

func WallClockIsFineHere() int64 {
	return time.Now().UnixNano()
}

func MapOrderIsFineHere(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
