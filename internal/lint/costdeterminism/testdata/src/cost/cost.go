// Fixture for the costdeterminism analyzer: package path contains "cost", so
// it is in scope.
package cost

import (
	"math/rand" // want `math/rand imported in a cost-bearing package`
	"sort"
	"strings"
	"time"
)

// badFloatAccum sums costs in map order: not reproducible.
func badFloatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `map iteration feeds float accumulation`
	}
	return total
}

// badFloatAccumExplicit uses x = x + y form.
func badFloatAccumExplicit(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `map iteration feeds float accumulation`
	}
	return total
}

// badFingerprint builds a fingerprint in map order.
func badFingerprint(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `map iteration feeds WriteString`
	}
	return sb.String()
}

// goodSortedKeys is the required idiom: deterministic order.
func goodSortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// goodIntAccum: integer accumulation is exact and commutative.
func goodIntAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// badWallClock stamps costs with the wall clock.
func badWallClock() int64 {
	return time.Now().UnixNano() // want `time.Now in a cost-bearing package`
}

// badRand perturbs costs randomly.
func badRand() float64 {
	return rand.Float64()
}

// allowedAccum is the audited exception pattern.
func allowedAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//lint:allow costdeterminism debug-only aggregate, never cached or fingerprinted
		total += v
	}
	return total
}
