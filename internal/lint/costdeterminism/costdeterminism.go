// Package costdeterminism checks that cost computation is a pure function of
// (plan, selectivity vector, statistics). The recost result cache, the plan
// fingerprints SCR keys its plan list by, and the differential fuzz oracle
// (docs/PERF.md) all assume float-exact reproducibility, and the paper's
// λ-guarantee is only as sound as the cost model's determinism — so inside
// the cost-bearing packages (internal/memo, internal/cost, internal/stats)
// the analyzer forbids:
//
//   - iterating a map while accumulating floats or building fingerprints /
//     hashes (map iteration order is randomized per run);
//   - time.Now / time.Since (wall-clock-dependent costs);
//   - math/rand (randomized costs). Seeded rand in _test.go files is fine;
//     test files are exempt.
package costdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "costdeterminism",
	Doc: "forbid map-iteration-order-dependent float/fingerprint computation, " +
		"wall clocks and math/rand in the cost-bearing packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// scope holds the package path segments the analyzer applies to,
// configurable for other repos via -costdeterminism.scope.
var scope = "memo,cost,stats"

func init() {
	Analyzer.Flags.StringVar(&scope, "scope", scope,
		"comma-separated package path segments the analyzer applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgInScope(pass.Pkg.Path(), strings.Split(scope, ",")) {
		return nil, nil
	}
	lintutil.ReportAllowMisuse(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.RangeStmt)(nil),
		(*ast.CallExpr)(nil),
		(*ast.ImportSpec)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		if lintutil.InTestFile(pass, n.Pos()) {
			return
		}
		switch s := n.(type) {
		case *ast.ImportSpec:
			path := strings.Trim(s.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				lintutil.Report(pass, s.Pos(), "math/rand imported in a cost-bearing package; costs must be deterministic in (plan, sv, stats)")
			}
		case *ast.CallExpr:
			if fn := calleePkgFunc(pass, s); fn != nil {
				pkg := fn.Pkg()
				if pkg != nil && pkg.Path() == "time" && (fn.Name() == "Now" || fn.Name() == "Since") {
					lintutil.Report(pass, s.Pos(), "time.%s in a cost-bearing package; wall-clock-dependent costs break recost caching and the differential oracle", fn.Name())
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, s)
		}
	})
	return nil, nil
}

func calleePkgFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn
}

// checkMapRange flags map iterations whose body performs order-sensitive
// accumulation: compound float or string accumulation (+=, *=, ... or
// x = x <op> y) or fingerprint/hash construction.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if reason := orderSensitiveAssign(pass, s); reason != "" {
				lintutil.Report(pass, s.Pos(), "map iteration feeds %s; iteration order is randomized, so the result is not reproducible — iterate a sorted key slice instead", reason)
			}
		case *ast.CallExpr:
			if name := methodName(s); name != "" && (strings.Contains(name, "Fingerprint") || strings.Contains(name, "Hash") || name == "WriteString") {
				lintutil.Report(pass, s.Pos(), "map iteration feeds %s; iteration order is randomized, so the fingerprint/hash is not reproducible — iterate a sorted key slice instead", name)
			}
		}
		return true
	})
}

// orderSensitiveAssign reports why an assignment inside a map range is
// order-sensitive, or "" if it is not. Float accumulation is inexact under
// reordering; string concatenation is order-dependent by construction.
// Integer accumulation (exact, commutative) and map/slice inserts are fine.
func orderSensitiveAssign(pass *analysis.Pass, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			switch kindOf(pass, lhs) {
			case "float":
				return "float accumulation"
			case "string":
				return "order-dependent string accumulation"
			}
		}
	case token.ASSIGN, token.DEFINE:
		// x = x <op> y with a float/string x.
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			bin, ok := as.Rhs[i].(*ast.BinaryExpr)
			if !ok {
				continue
			}
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if sameIdent(bin.X, lid) || sameIdent(bin.Y, lid) {
				switch kindOf(pass, lhs) {
				case "float":
					return "float accumulation"
				case "string":
					return "order-dependent string accumulation"
				}
			}
		}
	}
	return ""
}

func sameIdent(e ast.Expr, id *ast.Ident) bool {
	other, ok := e.(*ast.Ident)
	return ok && other.Name == id.Name
}

func kindOf(pass *analysis.Pass, e ast.Expr) string {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return ""
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return ""
	}
	switch {
	case basic.Info()&types.IsFloat != 0, basic.Info()&types.IsComplex != 0:
		return "float"
	case basic.Info()&types.IsString != 0:
		return "string"
	}
	return ""
}

func methodName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
