package pqotest

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/engine"
)

// EpochEngine wraps a synthetic Engine with a versioned-statistics
// lifecycle (core.EpochEngine): each epoch multiplies every plan's cost
// function by a deterministic positive per-(plan, epoch) scalar. A
// multilinear cost with non-negative coefficients times a positive scalar
// is still multilinear with non-negative coefficients, so PCM and BCG —
// and therefore the paper's λ guarantee — hold exactly *within* each
// epoch, while the optimal plan at a given vector can differ *between*
// epochs. That is precisely the regime the epoch machinery must survive:
// per-generation guarantees with generation-to-generation plan churn.
//
// CostAt / OptimalCostAt expose the ground truth for any epoch, so chaos
// tests can verify a served decision against a clean twin evaluated at
// the epoch the decision was served from.
type EpochEngine struct {
	*Engine
	epoch atomic.Uint64
}

// NewEpochEngine wraps e starting at epoch 1 (0 is reserved for
// epoch-less engines).
func NewEpochEngine(e *Engine) *EpochEngine {
	ee := &EpochEngine{Engine: e}
	ee.epoch.Store(1)
	return ee
}

// epochFactor is the deterministic positive scalar plan i's cost is
// multiplied by under epoch ep, in [0.5, 1.5]. Epoch 1 is the identity so
// the wrapped engine's costs are unchanged until the first Advance.
func (e *EpochEngine) epochFactor(i int, ep uint64) float64 {
	if ep <= 1 {
		return 1
	}
	h := (uint64(i)+1)*2654435761 ^ ep*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return 0.5 + float64(h%1000)/999.0
}

// StatsEpoch implements core.EpochEngine.
func (e *EpochEngine) StatsEpoch() uint64 { return e.epoch.Load() }

// Advance installs the next statistics generation and returns its id.
func (e *EpochEngine) Advance() uint64 { return e.epoch.Add(1) }

// OptimizeEpoch implements core.EpochEngine: the cheapest plan at sv
// under the current epoch's cost scaling.
func (e *EpochEngine) OptimizeEpoch(sv []float64) (*engine.CachedPlan, float64, uint64, error) {
	if len(sv) != e.d {
		return nil, 0, 0, fmt.Errorf("pqotest: sVector length %d, want %d", len(sv), e.d)
	}
	ep := e.epoch.Load()
	e.optimizeCalls.Add(1)
	best, bestCost := -1, math.Inf(1)
	for i := range e.specs {
		if c := e.specs[i].Cost(sv) * e.epochFactor(i, ep); c < bestCost {
			best, bestCost = i, c
		}
	}
	return e.cps[best], bestCost, ep, nil
}

// RecostEpoch implements core.EpochEngine.
func (e *EpochEngine) RecostEpoch(cp *engine.CachedPlan, sv []float64) (float64, uint64, error) {
	i, ok := e.byFP[cp.Fingerprint()]
	if !ok {
		return 0, 0, fmt.Errorf("pqotest: unknown plan %q", cp.Fingerprint())
	}
	ep := e.epoch.Load()
	e.recostCalls.Add(1)
	return e.specs[i].Cost(sv) * e.epochFactor(i, ep), ep, nil
}

// Optimize shadows the embedded engine so epoch-unaware callers still
// observe the current generation's costs.
func (e *EpochEngine) Optimize(sv []float64) (*engine.CachedPlan, float64, error) {
	cp, c, _, err := e.OptimizeEpoch(sv)
	return cp, c, err
}

// Recost shadows the embedded engine for the same reason.
func (e *EpochEngine) Recost(cp *engine.CachedPlan, sv []float64) (float64, error) {
	c, _, err := e.RecostEpoch(cp, sv)
	return c, err
}

// CostAt returns the ground-truth cost at sv of the plan with the given
// fingerprint under epoch ep. No call counter is charged. The second
// result is false for an unknown fingerprint.
func (e *EpochEngine) CostAt(fp string, sv []float64, ep uint64) (float64, bool) {
	i, ok := e.byFP[fp]
	if !ok {
		return math.NaN(), false
	}
	return e.specs[i].Cost(sv) * e.epochFactor(i, ep), true
}

// OptimalCostAt returns the ground-truth optimal cost at sv under epoch
// ep. No call counter is charged.
func (e *EpochEngine) OptimalCostAt(sv []float64, ep uint64) float64 {
	best := math.Inf(1)
	for i := range e.specs {
		if c := e.specs[i].Cost(sv) * e.epochFactor(i, ep); c < best {
			best = c
		}
	}
	return best
}
