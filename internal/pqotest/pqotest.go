// Package pqotest provides a synthetic PQO engine with closed-form,
// multilinear plan cost functions. Multilinear polynomials with
// non-negative coefficients satisfy both the PCM assumption (monotone in
// every selectivity) and the BCG assumption with fi(α)=α exactly, so the
// paper's λ-optimality guarantee must hold *unconditionally* against this
// engine — which makes it the right substrate for property tests of the
// techniques in packages core and baselines.
package pqotest

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/plan"
)

// PlanSpec defines one synthetic plan's cost function:
//
//	Cost(sv) = Const + Σ_i Linear[i]·sv[i] + Σ Cross[{i,j}]·sv[i]·sv[j]
//
// All coefficients must be non-negative for BCG/PCM compliance; Jump, if
// set, adds a discontinuity (for violation-detection tests): JumpAmount is
// added when sv[JumpDim] > JumpAt.
type PlanSpec struct {
	Name   string
	Const  float64
	Linear []float64
	Cross  map[[2]int]float64

	JumpDim    int
	JumpAt     float64
	JumpAmount float64
}

// Cost evaluates the cost function at sv.
func (p *PlanSpec) Cost(sv []float64) float64 {
	c := p.Const
	for i, b := range p.Linear {
		c += b * sv[i]
	}
	for k, v := range p.Cross {
		c += v * sv[k[0]] * sv[k[1]]
	}
	if p.JumpAmount > 0 && sv[p.JumpDim] > p.JumpAt {
		c += p.JumpAmount
	}
	return c
}

// Engine is a synthetic PQO engine over a fixed plan set. It implements
// core.Engine and is safe for concurrent use (the call counters are
// atomic, matching the concurrency contract of engine.TemplateEngine).
type Engine struct {
	d     int
	specs []PlanSpec
	cps   []*engine.CachedPlan
	byFP  map[string]int

	optimizeCalls atomic.Int64
	recostCalls   atomic.Int64
}

// OptimizeCalls reports how many Optimize calls the engine served.
func (e *Engine) OptimizeCalls() int64 { return e.optimizeCalls.Load() }

// RecostCalls reports how many Recost calls the engine served.
func (e *Engine) RecostCalls() int64 { return e.recostCalls.Load() }

// NewEngine builds a synthetic engine with d dimensions over the given plan
// specs.
func NewEngine(d int, specs []PlanSpec) (*Engine, error) {
	if d <= 0 || len(specs) == 0 {
		return nil, fmt.Errorf("pqotest: need d > 0 and at least one plan")
	}
	e := &Engine{d: d, specs: specs, byFP: make(map[string]int, len(specs))}
	for i := range specs {
		if len(specs[i].Linear) != d {
			return nil, fmt.Errorf("pqotest: plan %d has %d linear coefficients, want %d",
				i, len(specs[i].Linear), d)
		}
		cp := &engine.CachedPlan{Plan: plan.New("synthetic", &plan.Node{
			Op: plan.TableScan, Table: fmt.Sprintf("plan-%s-%d", specs[i].Name, i),
		})}
		e.cps = append(e.cps, cp)
		e.byFP[cp.Fingerprint()] = i
	}
	return e, nil
}

// Dimensions implements core.Engine.
func (e *Engine) Dimensions() int { return e.d }

// Optimize implements core.Engine: it returns the cheapest plan at sv.
func (e *Engine) Optimize(sv []float64) (*engine.CachedPlan, float64, error) {
	if len(sv) != e.d {
		return nil, 0, fmt.Errorf("pqotest: sVector length %d, want %d", len(sv), e.d)
	}
	e.optimizeCalls.Add(1)
	best, bestCost := -1, math.Inf(1)
	for i := range e.specs {
		if c := e.specs[i].Cost(sv); c < bestCost {
			best, bestCost = i, c
		}
	}
	return e.cps[best], bestCost, nil
}

// Recost implements core.Engine.
func (e *Engine) Recost(cp *engine.CachedPlan, sv []float64) (float64, error) {
	i, ok := e.byFP[cp.Fingerprint()]
	if !ok {
		return 0, fmt.Errorf("pqotest: unknown plan %q", cp.Fingerprint())
	}
	e.recostCalls.Add(1)
	return e.specs[i].Cost(sv), nil
}

// OptimalCost returns the ground-truth optimal cost at sv without charging
// the Optimize counter.
func (e *Engine) OptimalCost(sv []float64) float64 {
	best := math.Inf(1)
	for i := range e.specs {
		if c := e.specs[i].Cost(sv); c < best {
			best = c
		}
	}
	return best
}

// PlanCost returns a plan's cost at sv without charging the Recost counter.
func (e *Engine) PlanCost(cp *engine.CachedPlan, sv []float64) float64 {
	i, ok := e.byFP[cp.Fingerprint()]
	if !ok {
		return math.NaN()
	}
	return e.specs[i].Cost(sv)
}

// CostByFingerprint returns the ground-truth cost at sv of the plan with
// the given fingerprint, for end-to-end checks that only see a serialized
// decision (e.g. an HTTP plan response). The second result is false for
// an unknown fingerprint. No call counter is charged.
func (e *Engine) CostByFingerprint(fp string, sv []float64) (float64, bool) {
	i, ok := e.byFP[fp]
	if !ok {
		return math.NaN(), false
	}
	return e.specs[i].Cost(sv), true
}

// RandomEngine generates an engine with nPlans random multilinear plans over
// d dimensions. The plans are constructed so different selectivity regions
// favour different plans: each plan is cheap along a random subset of
// dimensions and expensive along the rest.
func RandomEngine(rng *rand.Rand, d, nPlans int) (*Engine, error) {
	specs := make([]PlanSpec, nPlans)
	for i := range specs {
		lin := make([]float64, d)
		for j := range lin {
			if rng.Intn(2) == 0 {
				lin[j] = 1 + rng.Float64()*10 // cheap dimension
			} else {
				lin[j] = 50 + rng.Float64()*200 // expensive dimension
			}
		}
		cross := map[[2]int]float64{}
		if d >= 2 && rng.Intn(2) == 0 {
			a, b := rng.Intn(d), rng.Intn(d)
			if a != b {
				if a > b {
					a, b = b, a
				}
				cross[[2]int{a, b}] = 20 + rng.Float64()*100
			}
		}
		specs[i] = PlanSpec{
			Name:   fmt.Sprintf("p%d", i),
			Const:  1 + rng.Float64()*5,
			Linear: lin,
			Cross:  cross,
		}
	}
	return NewEngine(d, specs)
}

// RandomSVector draws a selectivity vector with log-uniform entries in
// [1e-4, 1].
func RandomSVector(rng *rand.Rand, d int) []float64 {
	sv := make([]float64, d)
	for i := range sv {
		sv[i] = math.Pow(10, -4*rng.Float64())
	}
	return sv
}
