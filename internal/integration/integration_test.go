// Package integration holds slow cross-module audits that exercise the
// whole stack: the 90-template suite, the real optimizer/Recost engine, the
// SCR technique and the harness together.
package integration

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/suite"
	"repro/internal/workload"
)

// TestSuiteWideGuaranteeAudit runs SCR2 over every suite template with the
// real cost model and audits the λ guarantee. Unlike the synthetic-engine
// property tests (which must hold unconditionally), the real cost model has
// a BCG discontinuity (the hash-join spill cliff), so the paper's result is
// the expectation: violations are rare and mild, and TotalCostRatio stays
// far below λ.
func TestSuiteWideGuaranteeAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs SCR over the full 90-template suite")
	}
	systems, err := suite.NewSystems(20170514)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := suite.Build(systems)
	if err != nil {
		t.Fatal(err)
	}
	const (
		m      = 80
		lambda = 2.0
	)
	var (
		totalInstances  int64
		totalViolations int64
		worstMSO        float64 = 1
		tcOver2         int
	)
	for _, e := range entries {
		eng, err := e.Sys.EngineFor(e.Tpl)
		if err != nil {
			t.Fatalf("%s: %v", e.Tpl.Name, err)
		}
		base, err := workload.GenerateSet(e.Tpl.Dimensions(), m, 9)
		if err != nil {
			t.Fatal(err)
		}
		base, err = workload.Prepare(eng, base)
		if err != nil {
			t.Fatalf("%s: %v", e.Tpl.Name, err)
		}
		seq := &workload.Sequence{Name: e.Tpl.Name, Tpl: e.Tpl, Instances: base}
		tech, err := core.NewSCR(eng, core.Config{Lambda: lambda, DetectViolations: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{Lambda: lambda})
		if err != nil {
			t.Fatalf("%s: %v", e.Tpl.Name, err)
		}
		totalInstances += int64(res.M)
		totalViolations += res.BoundViolations
		if res.MSO > worstMSO {
			worstMSO = res.MSO
		}
		if res.TotalCostRatio > lambda {
			tcOver2++
		}
	}
	violationRate := float64(totalViolations) / float64(totalInstances)
	t.Logf("audit: %d instances over %d templates; bound violations %.3f%%; worst MSO %.2f; TC>λ templates: %d",
		totalInstances, len(entries), violationRate*100, worstMSO, tcOver2)
	// The paper's §7.2 finding: violations are rare. Allow up to 1% of
	// instances; TotalCostRatio must stay under λ for every template.
	if violationRate > 0.01 {
		t.Errorf("bound-violation rate %.3f%% exceeds 1%%", violationRate*100)
	}
	if tcOver2 > 0 {
		t.Errorf("%d templates have TotalCostRatio above λ", tcOver2)
	}
	// Even when BCG is violated, the damage should be bounded: SCR's
	// inference regions are local (§7.2's argument). The spill factor 2.5x
	// bounds the plausible overshoot.
	if worstMSO > lambda*2.5 {
		t.Errorf("worst MSO %.2f beyond the spill-explainable bound %.2f", worstMSO, lambda*2.5)
	}
}

// TestSuiteWideRecostConsistency verifies Recost(Optimize(sv)) == optimize
// cost on a sample of instances for every template — the engine-level
// invariant at suite scale.
func TestSuiteWideRecostConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("optimizes across the full suite")
	}
	systems, err := suite.NewSystems(20170514)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := suite.Build(systems)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		eng, err := e.Sys.EngineFor(e.Tpl)
		if err != nil {
			t.Fatal(err)
		}
		insts, err := workload.GenerateSet(e.Tpl.Dimensions(), 6, 13)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range insts {
			cp, c, err := eng.Optimize(q.SV)
			if err != nil {
				t.Fatalf("%s: optimize: %v", e.Tpl.Name, err)
			}
			rc, err := eng.Recost(cp, q.SV)
			if err != nil {
				t.Fatalf("%s: recost: %v", e.Tpl.Name, err)
			}
			if diff := (rc - c) / c; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s: recost %v != optimize %v at %v", e.Tpl.Name, rc, c, q.SV)
			}
		}
	}
}
