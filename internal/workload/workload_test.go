package workload

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/query"
)

func TestGenerateSetErrors(t *testing.T) {
	if _, err := GenerateSet(0, 10, 1); err == nil {
		t.Error("d=0 should fail")
	}
	if _, err := GenerateSet(2, 0, 1); err == nil {
		t.Error("m=0 should fail")
	}
}

func TestGenerateSetShapeAndRegions(t *testing.T) {
	d, m := 3, 500
	insts, err := GenerateSet(d, m, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != m {
		t.Fatalf("got %d instances, want %d", len(insts), m)
	}
	// Classify by region and count: each of d+2 regions should hold
	// roughly m/(d+2) instances.
	counts := make(map[string]int)
	for _, q := range insts {
		if len(q.SV) != d {
			t.Fatalf("sVector width %d, want %d", len(q.SV), d)
		}
		key := ""
		for _, s := range q.SV {
			if s < SmallLo || s > LargeHi {
				t.Fatalf("selectivity %v outside [%v, %v]", s, SmallLo, LargeHi)
			}
			if s >= LargeLo {
				key += "L"
			} else if s <= SmallHi {
				key += "s"
			} else {
				t.Fatalf("selectivity %v falls between the small and large bands", s)
			}
		}
		counts[key]++
	}
	expectKeys := []string{"sss", "LLL", "Lss", "sLs", "ssL"}
	for _, k := range expectKeys {
		got := counts[k]
		want := m / (d + 2)
		if got < want-1 || got > want+1 {
			t.Errorf("region %q holds %d instances, want ~%d", k, got, want)
		}
	}
}

func TestGenerateSetDeterministic(t *testing.T) {
	a, _ := GenerateSet(2, 100, 7)
	b, _ := GenerateSet(2, 100, 7)
	for i := range a {
		for j := range a[i].SV {
			if a[i].SV[j] != b[i].SV[j] {
				t.Fatal("same seed produced different sets")
			}
		}
	}
	c, _ := GenerateSet(2, 100, 8)
	same := true
	for i := range a {
		if a[i].SV[0] != c[i].SV[0] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sets")
	}
}

func testEngine(t testing.TB) (*engine.TemplateEngine, *query.Template) {
	t.Helper()
	sys, err := engine.NewSystem(catalog.NewTPCH(0.05), 42)
	if err != nil {
		t.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "q2d",
		Catalog: sys.Cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey", Selectivity: 1.0 / 75_000}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		t.Fatal(err)
	}
	return eng, tpl
}

func TestPrepareFillsGroundTruth(t *testing.T) {
	eng, _ := testEngine(t)
	insts, err := GenerateSet(2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := Prepare(eng, insts)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range prepared {
		if q.OptCost <= 0 || q.OptFP == "" {
			t.Fatalf("instance %d missing ground truth: %+v", i, q)
		}
	}
	if n := DistinctOptimalPlans(prepared); n < 2 {
		t.Errorf("only %d distinct optimal plans over the bucketized set; expected diversity", n)
	}
}

func TestOrderRequiresPrepare(t *testing.T) {
	insts, _ := GenerateSet(2, 10, 1)
	for _, o := range []Ordering{DecreasingCost, RoundRobinByPlan, InsideOut, OutsideIn} {
		if _, err := Order(insts, o, 1); err == nil {
			t.Errorf("%v without Prepare should fail", o)
		}
	}
	if _, err := Order(insts, Random, 1); err != nil {
		t.Errorf("Random must not require Prepare: %v", err)
	}
	if _, err := Order(insts, Ordering(99), 1); err == nil {
		t.Error("unknown ordering should fail")
	}
}

func TestOrderings(t *testing.T) {
	eng, _ := testEngine(t)
	insts, err := GenerateSet(2, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	insts, err = Prepare(eng, insts)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("preserves multiset", func(t *testing.T) {
		for _, o := range AllOrderings {
			out, err := Order(insts, o, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(insts) {
				t.Fatalf("%v: length %d, want %d", o, len(out), len(insts))
			}
			sum := func(xs []Instance) float64 {
				s := 0.0
				for _, q := range xs {
					s += q.SV[0] + 10*q.SV[1]
				}
				return s
			}
			if math.Abs(sum(out)-sum(insts)) > 1e-9 {
				t.Errorf("%v does not preserve the instance multiset", o)
			}
		}
	})

	t.Run("decreasing cost", func(t *testing.T) {
		out, err := Order(insts, DecreasingCost, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(out); i++ {
			if out[i-1].OptCost < out[i].OptCost {
				t.Fatalf("not decreasing at %d: %v < %v", i, out[i-1].OptCost, out[i].OptCost)
			}
		}
	})

	t.Run("outside-in alternates extremes", func(t *testing.T) {
		out, err := Order(insts, OutsideIn, 5)
		if err != nil {
			t.Fatal(err)
		}
		minC, maxC := math.Inf(1), math.Inf(-1)
		for _, q := range insts {
			minC = math.Min(minC, q.OptCost)
			maxC = math.Max(maxC, q.OptCost)
		}
		if out[0].OptCost != minC || out[1].OptCost != maxC {
			t.Errorf("outside-in should start with the extremes: got %v then %v (range [%v, %v])",
				out[0].OptCost, out[1].OptCost, minC, maxC)
		}
	})

	t.Run("inside-out starts at median", func(t *testing.T) {
		out, err := Order(insts, InsideOut, 5)
		if err != nil {
			t.Fatal(err)
		}
		costs := make([]float64, len(insts))
		for i, q := range insts {
			costs[i] = q.OptCost
		}
		minC, maxC := math.Inf(1), math.Inf(-1)
		for _, c := range costs {
			minC = math.Min(minC, c)
			maxC = math.Max(maxC, c)
		}
		// The first instance should be closer to the median than to either
		// extreme.
		if out[0].OptCost == minC || out[0].OptCost == maxC {
			t.Error("inside-out should not start at an extreme")
		}
	})

	t.Run("round robin cycles plans", func(t *testing.T) {
		out, err := Order(insts, RoundRobinByPlan, 5)
		if err != nil {
			t.Fatal(err)
		}
		nPlans := DistinctOptimalPlans(insts)
		if nPlans < 2 {
			t.Skip("need >= 2 plans for a meaningful round-robin check")
		}
		// Within the first nPlans instances, all plans must be distinct.
		seen := map[string]bool{}
		for _, q := range out[:nPlans] {
			if seen[q.OptFP] {
				t.Fatal("round-robin repeated a plan within the first cycle")
			}
			seen[q.OptFP] = true
		}
	})
}

func TestBuildSequences(t *testing.T) {
	eng, tpl := testEngine(t)
	seqs, err := BuildSequences(eng, tpl, 30, 11, AllOrderings)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != len(AllOrderings) {
		t.Fatalf("got %d sequences, want %d", len(seqs), len(AllOrderings))
	}
	for _, s := range seqs {
		if len(s.Instances) != 30 {
			t.Errorf("%s has %d instances", s.Name, len(s.Instances))
		}
		if s.Tpl != tpl {
			t.Errorf("%s has wrong template", s.Name)
		}
	}
}

func TestOrderingString(t *testing.T) {
	names := map[Ordering]string{
		Random: "random", DecreasingCost: "decreasing-cost",
		RoundRobinByPlan: "round-robin", InsideOut: "inside-out", OutsideIn: "outside-in",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}
