// Package workload generates the query-instance sequences the paper's
// evaluation runs on (§7.1): selectivity-space bucketization into d+2
// regions, fixed-length instance sets, and the five orderings of Appendix
// H.1 (random, decreasing optimal cost, round-robin by optimal plan,
// inside-out and outside-in by optimal cost).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/engine"
	"repro/internal/query"
)

// Instance is one query instance of a sequence: its selectivity vector plus
// the ground truth (optimal cost and optimal plan fingerprint) filled in by
// Prepare.
type Instance struct {
	SV      []float64
	OptCost float64
	OptFP   string
}

// Sequence is an ordered workload for one template.
type Sequence struct {
	Name      string
	Tpl       *query.Template
	Instances []Instance
}

// Region bounds used by the bucketization: "small" selectivities are
// log-uniform in [SmallLo, SmallHi], "large" ones uniform in [LargeLo,
// LargeHi].
const (
	SmallLo = 1e-4
	SmallHi = 0.05
	LargeLo = 0.2
	LargeHi = 0.9
)

// GenerateSet produces m selectivity vectors for a d-dimensional template
// using the paper's bucketization: m/(d+2) instances from each of Region0
// (all small), Region1 (all large) and Region_di (only dimension i large),
// in random order.
func GenerateSet(d, m int, seed int64) ([]Instance, error) {
	if d <= 0 {
		return nil, fmt.Errorf("workload: dimensions %d must be positive", d)
	}
	if m <= 0 {
		return nil, fmt.Errorf("workload: length %d must be positive", m)
	}
	rng := rand.New(rand.NewSource(seed))
	regions := d + 2
	out := make([]Instance, 0, m)
	for r := 0; r < regions; r++ {
		count := m / regions
		if r < m%regions {
			count++
		}
		for i := 0; i < count; i++ {
			sv := make([]float64, d)
			for dim := 0; dim < d; dim++ {
				large := r == 1 || (r >= 2 && r-2 == dim)
				if large {
					sv[dim] = LargeLo + rng.Float64()*(LargeHi-LargeLo)
				} else {
					sv[dim] = logUniform(rng, SmallLo, SmallHi)
				}
			}
			out = append(out, Instance{SV: sv})
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Prepare fills in each instance's ground truth — optimal cost and optimal
// plan fingerprint — by optimizing it (the paper does the same offline pass
// to construct orderings, Appendix H.1). The engine's accounting is left
// untouched beyond the calls themselves; callers that need clean technique
// accounting should use a separate engine or reset timings afterwards.
func Prepare(eng *engine.TemplateEngine, insts []Instance) ([]Instance, error) {
	out := make([]Instance, len(insts))
	for i, q := range insts {
		cp, c, err := eng.Optimize(q.SV)
		if err != nil {
			return nil, fmt.Errorf("workload: preparing instance %d: %w", i, err)
		}
		q.OptCost = c
		q.OptFP = cp.Fingerprint()
		out[i] = q
	}
	return out, nil
}

// Ordering selects one of the Appendix H.1 sequence orderings.
type Ordering int

const (
	// Random shuffles instances uniformly.
	Random Ordering = iota
	// DecreasingCost orders by descending optimal cost (adversarial for
	// PCM, which then never sees a dominating pair in time).
	DecreasingCost
	// RoundRobinByPlan deals instances from the optimality region of each
	// distinct plan in turn.
	RoundRobinByPlan
	// InsideOut starts at instances with near-median optimal cost and
	// diverges towards the extremes.
	InsideOut
	// OutsideIn alternates extreme-cost instances first, converging to the
	// median.
	OutsideIn
)

// AllOrderings lists every ordering, in the order experiments report them.
var AllOrderings = []Ordering{Random, DecreasingCost, RoundRobinByPlan, InsideOut, OutsideIn}

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Random:
		return "random"
	case DecreasingCost:
		return "decreasing-cost"
	case RoundRobinByPlan:
		return "round-robin"
	case InsideOut:
		return "inside-out"
	case OutsideIn:
		return "outside-in"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// Order returns a new slice with the instances arranged per the ordering.
// DecreasingCost, RoundRobinByPlan, InsideOut and OutsideIn require
// Prepare to have been run (they consult OptCost/OptFP).
func Order(insts []Instance, o Ordering, seed int64) ([]Instance, error) {
	out := make([]Instance, len(insts))
	copy(out, insts)
	switch o {
	case Random:
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out, nil

	case DecreasingCost:
		if err := requirePrepared(out); err != nil {
			return nil, err
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].OptCost > out[j].OptCost })
		return out, nil

	case RoundRobinByPlan:
		if err := requirePrepared(out); err != nil {
			return nil, err
		}
		byPlan := make(map[string][]Instance)
		var planOrder []string
		for _, q := range out {
			if _, seen := byPlan[q.OptFP]; !seen {
				planOrder = append(planOrder, q.OptFP)
			}
			byPlan[q.OptFP] = append(byPlan[q.OptFP], q)
		}
		sort.Strings(planOrder)
		result := out[:0]
		for len(result) < len(insts) {
			for _, fp := range planOrder {
				if len(byPlan[fp]) > 0 {
					result = append(result, byPlan[fp][0])
					byPlan[fp] = byPlan[fp][1:]
				}
			}
		}
		return result, nil

	case InsideOut, OutsideIn:
		if err := requirePrepared(out); err != nil {
			return nil, err
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].OptCost < out[j].OptCost })
		n := len(out)
		result := make([]Instance, 0, n)
		lo, hi := 0, n-1
		if o == OutsideIn {
			// Alternate extremes: lowest, highest, next-lowest, ...
			for lo <= hi {
				result = append(result, out[lo])
				lo++
				if lo <= hi {
					result = append(result, out[hi])
					hi--
				}
			}
			return result, nil
		}
		// InsideOut: start at the median and spiral outwards.
		mid := n / 2
		result = append(result, out[mid])
		for step := 1; len(result) < n; step++ {
			if mid-step >= 0 {
				result = append(result, out[mid-step])
			}
			if mid+step < n {
				result = append(result, out[mid+step])
			}
		}
		return result, nil

	default:
		return nil, fmt.Errorf("workload: unknown ordering %d", int(o))
	}
}

func requirePrepared(insts []Instance) error {
	for i := range insts {
		if insts[i].OptCost <= 0 || insts[i].OptFP == "" {
			return fmt.Errorf("workload: ordering requires Prepare (instance %d lacks ground truth)", i)
		}
	}
	return nil
}

// BuildSequences generates, prepares and orders a full experiment input:
// one sequence per requested ordering over a common m-instance set.
func BuildSequences(eng *engine.TemplateEngine, tpl *query.Template, m int, seed int64,
	orderings []Ordering) ([]*Sequence, error) {

	base, err := GenerateSet(tpl.Dimensions(), m, seed)
	if err != nil {
		return nil, err
	}
	base, err = Prepare(eng, base)
	if err != nil {
		return nil, err
	}
	seqs := make([]*Sequence, 0, len(orderings))
	for _, o := range orderings {
		ordered, err := Order(base, o, seed+int64(o)+1)
		if err != nil {
			return nil, err
		}
		seqs = append(seqs, &Sequence{
			Name:      fmt.Sprintf("%s/%s", tpl.Name, o),
			Tpl:       tpl,
			Instances: ordered,
		})
	}
	return seqs, nil
}

// DistinctOptimalPlans reports n, the number of distinct optimal plans over
// the (prepared) instance set — the paper's |P| per workload.
func DistinctOptimalPlans(insts []Instance) int {
	seen := make(map[string]bool)
	for _, q := range insts {
		if q.OptFP != "" {
			seen[q.OptFP] = true
		}
	}
	return len(seen)
}
