package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceJSON is the serialized form of a workload sequence: enough to replay
// an experiment elsewhere (or diff two runs) without re-deriving ground
// truth. The template itself is referenced by name; the consumer must bind
// the same template/catalog (the seeds in this repository make that
// deterministic).
type traceJSON struct {
	Template  string          `json:"template"`
	Instances []instanceTrace `json:"instances"`
}

type instanceTrace struct {
	SV      []float64 `json:"sv"`
	OptCost float64   `json:"optCost,omitempty"`
	OptFP   string    `json:"optFP,omitempty"`
}

// WriteTrace serializes a sequence to w as JSON.
func WriteTrace(w io.Writer, seq *Sequence) error {
	if seq == nil || len(seq.Instances) == 0 {
		return fmt.Errorf("workload: cannot trace an empty sequence")
	}
	out := traceJSON{Template: seq.Name}
	for _, q := range seq.Instances {
		out.Instances = append(out.Instances, instanceTrace{SV: q.SV, OptCost: q.OptCost, OptFP: q.OptFP})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadTrace deserializes a sequence written by WriteTrace. The returned
// sequence carries the recorded name; callers re-attach the template.
func ReadTrace(r io.Reader) (*Sequence, error) {
	var in traceJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(in.Instances) == 0 {
		return nil, fmt.Errorf("workload: trace has no instances")
	}
	seq := &Sequence{Name: in.Template}
	d := len(in.Instances[0].SV)
	if d == 0 {
		return nil, fmt.Errorf("workload: trace instance 0 has empty sVector")
	}
	for i, q := range in.Instances {
		if len(q.SV) != d {
			return nil, fmt.Errorf("workload: trace instance %d has %d dims, expected %d", i, len(q.SV), d)
		}
		for j, s := range q.SV {
			if s <= 0 || s > 1 {
				return nil, fmt.Errorf("workload: trace instance %d dim %d selectivity %v out of (0,1]", i, j, s)
			}
		}
		seq.Instances = append(seq.Instances, Instance{SV: q.SV, OptCost: q.OptCost, OptFP: q.OptFP})
	}
	return seq, nil
}
