package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	eng, tpl := testEngine(t)
	insts, err := GenerateSet(2, 25, 4)
	if err != nil {
		t.Fatal(err)
	}
	insts, err = Prepare(eng, insts)
	if err != nil {
		t.Fatal(err)
	}
	seq := &Sequence{Name: tpl.Name + "/random", Tpl: tpl, Instances: insts}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, seq); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != seq.Name {
		t.Errorf("name = %q, want %q", back.Name, seq.Name)
	}
	if len(back.Instances) != len(seq.Instances) {
		t.Fatalf("instances = %d, want %d", len(back.Instances), len(seq.Instances))
	}
	for i := range back.Instances {
		a, b := back.Instances[i], seq.Instances[i]
		if a.OptCost != b.OptCost || a.OptFP != b.OptFP {
			t.Fatalf("instance %d ground truth mismatch", i)
		}
		for j := range a.SV {
			if a.SV[j] != b.SV[j] {
				t.Fatalf("instance %d sVector mismatch", i)
			}
		}
	}
}

func TestTraceValidation(t *testing.T) {
	if err := WriteTrace(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil sequence should fail")
	}
	if err := WriteTrace(&bytes.Buffer{}, &Sequence{Name: "x"}); err == nil {
		t.Error("empty sequence should fail")
	}
	cases := []struct {
		name, data, want string
	}{
		{"garbage", "{", "reading trace"},
		{"empty", `{"template":"t","instances":[]}`, "no instances"},
		{"empty sv", `{"template":"t","instances":[{"sv":[]}]}`, "empty sVector"},
		{"ragged", `{"template":"t","instances":[{"sv":[0.1,0.2]},{"sv":[0.1]}]}`, "dims"},
		{"out of range", `{"template":"t","instances":[{"sv":[0.1,1.5]}]}`, "out of (0,1]"},
		{"zero sel", `{"template":"t","instances":[{"sv":[0,0.5]}]}`, "out of (0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(tc.data))
			if err == nil {
				t.Fatalf("ReadTrace(%q) succeeded, want error containing %q", tc.data, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}
