// Server: an HTTP plan-cache service around SCR.
//
// The service owns one SCR plan cache per registered query template. A
// client POSTs a query instance (template name + selectivity vector) to
// /plan and receives the chosen plan, which check served it, and the
// estimated cost; GET /stats reports the paper's three metrics live; POST
// /snapshot persists every plan cache to disk via core's Export, and the
// server restores them on startup — warm caches across restarts.
//
// Run with:  go run ./examples/server [-addr :8080] [-snapshot dir]
// Then:
//
//	curl -s localhost:8080/templates
//	curl -s -X POST localhost:8080/plan \
//	     -d '{"template":"dashboard","sVector":[0.01,0.2]}'
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// service maps template names to their engine + SCR cache.
type service struct {
	templates map[string]*entry
	snapshot  string
}

type entry struct {
	eng *engine.TemplateEngine
	scr *core.SCR
	sql string
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapshot := flag.String("snapshot", "", "directory for plan-cache snapshots (empty = disabled)")
	lambda := flag.Float64("lambda", 2, "sub-optimality bound λ")
	flag.Parse()

	svc, err := newService(*lambda, *snapshot)
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/templates", svc.handleTemplates)
	mux.HandleFunc("/plan", svc.handlePlan)
	mux.HandleFunc("/stats", svc.handleStats)
	mux.HandleFunc("/snapshot", svc.handleSnapshot)
	log.Printf("plan-cache service on %s (λ=%g, %d templates)", *addr, *lambda, len(svc.templates))
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// newService registers two demonstration templates over a TPC-DS-like
// system, restoring snapshots when present.
func newService(lambda float64, snapshot string) (*service, error) {
	sys, err := engine.NewSystem(catalog.NewTPCDS(0.1), 21)
	if err != nil {
		return nil, err
	}
	defs := map[string]string{
		"dashboard": `SELECT g, COUNT(*) FROM store_sales, date_dim
		              WHERE store_sales.ss_sold_date_sk = date_dim.d_date_sk
		                AND date_dim.d_year <= ?0
		                AND store_sales.ss_sales_price >= ?1
		              GROUP BY g`,
		"item_drill": `SELECT * FROM store_sales, item
		               WHERE store_sales.ss_item_sk = item.i_item_sk
		                 AND item.i_current_price <= ?0
		                 AND store_sales.ss_quantity >= ?1
		                 AND store_sales.ss_net_profit >= ?2`,
	}
	svc := &service{templates: make(map[string]*entry), snapshot: snapshot}
	for name, sql := range defs {
		tpl, err := sqlparse.Parse(name, sql, sys.Cat)
		if err != nil {
			return nil, fmt.Errorf("template %s: %w", name, err)
		}
		eng, err := sys.EngineFor(tpl)
		if err != nil {
			return nil, err
		}
		scr, err := core.NewSCR(eng, core.Config{Lambda: lambda, DetectViolations: true})
		if err != nil {
			return nil, err
		}
		e := &entry{eng: eng, scr: scr, sql: tpl.SQL()}
		if snapshot != "" {
			if data, err := os.ReadFile(filepath.Join(snapshot, name+".json")); err == nil {
				if err := scr.Import(data); err != nil {
					log.Printf("snapshot for %s ignored: %v", name, err)
				} else {
					log.Printf("restored plan cache for %s (%d plans)", name, scr.Stats().CurPlans)
				}
			}
		}
		svc.templates[name] = e
	}
	return svc, nil
}

type planRequest struct {
	Template string    `json:"template"`
	SVector  []float64 `json:"sVector"`
}

type planResponse struct {
	Via           string  `json:"via"`
	Optimized     bool    `json:"optimized"`
	EstimatedCost float64 `json:"estimatedCost"`
	Plan          string  `json:"plan"`
	Fingerprint   string  `json:"fingerprint"`
}

func (s *service) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	e, ok := s.templates[req.Template]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown template %q", req.Template), http.StatusNotFound)
		return
	}
	dec, err := e.scr.Process(req.SVector)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cost, err := e.eng.Recost(dec.Plan, req.SVector)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, planResponse{
		Via:           dec.Via.String(),
		Optimized:     dec.Optimized,
		EstimatedCost: cost,
		Plan:          dec.Plan.Plan.String(),
		Fingerprint:   dec.Plan.Fingerprint(),
	})
}

func (s *service) handleTemplates(w http.ResponseWriter, _ *http.Request) {
	type tplInfo struct {
		Name string `json:"name"`
		SQL  string `json:"sql"`
		D    int    `json:"dimensions"`
	}
	var out []tplInfo
	for name, e := range s.templates {
		out = append(out, tplInfo{Name: name, SQL: e.sql, D: e.eng.Dimensions()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

func (s *service) handleStats(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		Template    string  `json:"template"`
		Instances   int64   `json:"instances"`
		NumOpt      int64   `json:"numOpt"`
		OptPct      float64 `json:"optPct"`
		Plans       int     `json:"plans"`
		MemoryBytes int64   `json:"memoryBytes"`
		Recosts     int64   `json:"getPlanRecosts"`
		Violations  int64   `json:"bcgViolations"`
	}
	var out []row
	for name, e := range s.templates {
		st := e.scr.Stats()
		pct := 0.0
		if st.Instances > 0 {
			pct = float64(st.OptCalls) / float64(st.Instances) * 100
		}
		out = append(out, row{
			Template: name, Instances: st.Instances, NumOpt: st.OptCalls,
			OptPct: pct, Plans: st.CurPlans, MemoryBytes: st.MemoryBytes,
			Recosts: st.GetPlanRecosts, Violations: st.Violations,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Template < out[j].Template })
	writeJSON(w, out)
}

func (s *service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.snapshot == "" {
		http.Error(w, "snapshots disabled (start with -snapshot dir)", http.StatusConflict)
		return
	}
	if err := os.MkdirAll(s.snapshot, 0o755); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	saved := 0
	for name, e := range s.templates {
		data, err := e.scr.Export()
		if err != nil {
			http.Error(w, fmt.Sprintf("exporting %s: %v", name, err), http.StatusInternalServerError)
			return
		}
		if err := os.WriteFile(filepath.Join(s.snapshot, name+".json"), data, 0o644); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		saved++
	}
	writeJSON(w, map[string]int{"snapshots": saved})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}
