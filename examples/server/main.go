// Server example: the HTTP plan-cache service from internal/server over
// two demonstration templates on a TPC-DS-shaped system.
//
// The heavy lifting — concurrent SCR caches, request timeouts, metrics,
// snapshots, graceful shutdown — lives in internal/server; this binary
// only wires templates and flags.
//
// Run with:  go run ./examples/server [-addr :8080] [-snapshot dir]
// Then:
//
//	curl -s localhost:8080/v1/templates
//	curl -s -X POST localhost:8080/v1/plan \
//	     -d '{"template":"dashboard","sVector":[0.01,0.2]}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/metrics
//	curl -s -X POST localhost:8080/v1/snapshot
//	curl -s -X POST localhost:8080/v1/admin/stats -d '{"resampleSeed":7}'
//	curl -s localhost:8080/v1/admin/epochs
//	curl -s localhost:8080/v1/openapi.json
//
// The unversioned paths from earlier releases still answer with 308
// permanent redirects to their /v1 equivalents.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/pqo"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapshot := flag.String("snapshot", "", "directory for plan-cache snapshots (empty = disabled)")
	lambda := flag.Float64("lambda", 2, "sub-optimality bound λ")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	flag.Parse()

	srv, err := newServer(*lambda, *snapshot, *timeout)
	if err != nil {
		log.Fatal(err)
	}

	// ListenAndServe returns as soon as Shutdown has drained the
	// listeners — before Shutdown has written snapshots — so main must
	// wait for the shutdown goroutine, not just for Serve to return.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("plan-cache service on %s (λ=%g)", *addr, *lambda)
	if err := srv.ListenAndServe(*addr); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// newServer registers two demonstration templates over a TPC-DS-like
// system; internal/server restores snapshots when present.
func newServer(lambda float64, snapshot string, timeout time.Duration) (*server.Server, error) {
	sys, err := pqo.NewSystem(pqo.TPCDS(0.1), 21)
	if err != nil {
		return nil, err
	}
	defs := map[string]string{
		"dashboard": `SELECT g, COUNT(*) FROM store_sales, date_dim
		              WHERE store_sales.ss_sold_date_sk = date_dim.d_date_sk
		                AND date_dim.d_year <= ?0
		                AND store_sales.ss_sales_price >= ?1
		              GROUP BY g`,
		"item_drill": `SELECT * FROM store_sales, item
		               WHERE store_sales.ss_item_sk = item.i_item_sk
		                 AND item.i_current_price <= ?0
		                 AND store_sales.ss_quantity >= ?1
		                 AND store_sales.ss_net_profit >= ?2`,
	}
	srv := server.New(server.Config{
		RequestTimeout: timeout,
		SnapshotDir:    snapshot,
		Logger:         log.Default(),
	})
	for name, sql := range defs {
		tpl, err := pqo.ParseTemplate(name, sql, sys.Cat)
		if err != nil {
			return nil, fmt.Errorf("template %s: %w", name, err)
		}
		eng, err := sys.EngineFor(tpl)
		if err != nil {
			return nil, err
		}
		scr, err := pqo.New(eng, pqo.WithLambda(lambda), pqo.WithViolationDetection(0.01))
		if err != nil {
			return nil, err
		}
		if err := srv.Register(name, tpl.SQL(), eng, scr); err != nil {
			return nil, err
		}
	}
	// Attaching the system enables the /v1/admin endpoints: online
	// statistics refresh with epoch-based background revalidation.
	srv.SetSystem(sys)
	return srv, nil
}
