// Reporting: a BI-dashboard workload over a TPC-DS-like star schema.
//
// Dashboards issue the same parameterized query with wildly different
// filters — "last week, premium items" vs "all of 2023, everything". This
// example runs 300 such instances through Optimize-Always, Optimize-Once,
// PCM and SCR and compares the paper's three metrics: cost sub-optimality,
// optimizer calls, and plans cached. It shows the Optimize-Once risk (a
// plan tuned for a narrow filter reused for a broad one) and how SCR holds
// sub-optimality under λ while optimizing a small fraction of instances.
//
// Run with: go run ./examples/reporting
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	sys, err := engine.NewSystem(catalog.NewTPCDS(0.1), 7)
	if err != nil {
		log.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "dashboard",
		Catalog: sys.Cat,
		Tables:  []string{"store_sales", "date_dim", "item"},
		Joins: []query.Join{
			{Left: "store_sales", Right: "date_dim",
				LeftCol: "ss_sold_date_sk", RightCol: "d_date_sk", Selectivity: 1.0 / 73049},
			{Left: "store_sales", Right: "item",
				LeftCol: "ss_item_sk", RightCol: "i_item_sk", Selectivity: 1.0 / 1800},
		},
		Preds: []query.Predicate{
			{Table: "date_dim", Column: "d_year", Op: query.LE, Param: 0},
			{Table: "item", Column: "i_current_price", Op: query.GE, Param: 1},
			{Table: "store_sales", Column: "ss_quantity", Op: query.GE, Param: 2},
		},
		Agg:       query.GroupBy,
		GroupCard: 200,
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		log.Fatal(err)
	}

	// The workload: 300 dashboard refreshes. Most are "recent + narrow"
	// (small selectivities), a few are quarterly "everything" reports.
	rng := rand.New(rand.NewSource(42))
	var insts []workload.Instance
	for i := 0; i < 300; i++ {
		var sv []float64
		switch {
		case i%10 == 9: // broad quarterly report
			sv = []float64{0.5 + 0.4*rng.Float64(), 0.3 + 0.4*rng.Float64(), 0.5 + 0.4*rng.Float64()}
		case i%10 >= 7: // mid-size weekly view
			sv = []float64{0.05 + 0.1*rng.Float64(), 0.05 + 0.1*rng.Float64(), 0.1 + 0.1*rng.Float64()}
		default: // narrow daily drill-down
			sv = []float64{0.001 + 0.01*rng.Float64(), 0.002 + 0.02*rng.Float64(), 0.001 + 0.01*rng.Float64()}
		}
		insts = append(insts, workload.Instance{SV: sv})
	}
	insts, err = workload.Prepare(eng, insts)
	if err != nil {
		log.Fatal(err)
	}
	seq := &workload.Sequence{Name: "dashboard", Tpl: tpl, Instances: insts}
	fmt.Printf("dashboard workload: %d instances, %d distinct optimal plans\n\n",
		len(insts), workload.DistinctOptimalPlans(insts))

	techniques := []struct {
		label string
		make  func() (core.Technique, error)
	}{
		{"OptAlways", func() (core.Technique, error) { return baselines.NewOptAlways(eng), nil }},
		{"OptOnce", func() (core.Technique, error) { return baselines.NewOptOnce(eng), nil }},
		{"PCM(2)", func() (core.Technique, error) { return baselines.NewPCM(eng, 2) }},
		{"SCR(2)", func() (core.Technique, error) {
			return core.NewSCR(eng, core.Config{Lambda: 2, DetectViolations: true})
		}},
		{"SCR(1.1)", func() (core.Technique, error) {
			return core.NewSCR(eng, core.Config{Lambda: 1.1, DetectViolations: true})
		}},
	}
	fmt.Printf("%-10s %8s %8s %8s %10s %8s\n", "technique", "MSO", "TC", "numOpt", "numOpt%", "plans")
	for _, t := range techniques {
		tech, err := t.make()
		if err != nil {
			log.Fatal(err)
		}
		res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.2f %8.3f %8d %9.1f%% %8d\n",
			t.label, res.MSO, res.TotalCostRatio, res.NumOpt, res.OptFraction*100, res.NumPlans)
	}
	fmt.Println("\nreading the table: OptOnce avoids optimization entirely but its MSO shows the")
	fmt.Println("risk of reusing one plan everywhere; SCR keeps MSO under its λ while calling")
	fmt.Println("the optimizer for only a fraction of instances and caching a handful of plans.")
}
