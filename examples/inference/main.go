// Inference: visualizes SCR's λ-optimal inference regions (Figure 4 of the
// paper) on a 2-d selectivity grid.
//
// After optimizing a handful of anchor instances, every grid cell is
// classified by how SCR would serve it: 'S' — the selectivity check infers
// a cached plan from G·L ≤ λ alone; 'C' — the selectivity check fails but
// the recost-based cost check succeeds (R·L ≤ λ/S); '.' — an optimizer
// call would be needed. The 'S' regions have the line/hyperbola-bounded
// shape derived in §5.3; the 'C' regions extend them wherever actual cost
// growth is slower than the BCG bound.
//
// Run with: go run ./examples/inference
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/query"
)

func main() {
	sys, err := engine.NewSystem(catalog.NewTPCH(0.1), 5)
	if err != nil {
		log.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "inference",
		Catalog: sys.Cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{
			Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey",
			Selectivity: 1.0 / 150_000,
		}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_orderdate", Op: query.LE, Param: 1},
		},
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		log.Fatal(err)
	}

	lambda := 2.0
	scr, err := core.NewSCR(eng, core.Config{Lambda: lambda})
	if err != nil {
		log.Fatal(err)
	}
	anchors := [][]float64{
		{0.003, 0.003},
		{0.3, 0.3},
		{0.003, 0.5},
	}
	for _, sv := range anchors {
		if _, err := scr.Process(context.Background(), sv); err != nil {
			log.Fatal(err)
		}
	}

	const grid = 40
	lo, hi := 1e-4, 0.95
	fmt.Printf("SCR inference regions, λ=%g, anchors %v\n", lambda, anchors)
	fmt.Println("S = selectivity check, C = cost check, . = optimizer call, * = anchor")
	fmt.Println()
	for yi := grid - 1; yi >= 0; yi-- {
		fmt.Print("  ")
		for xi := 0; xi < grid; xi++ {
			sx := logScale(lo, hi, float64(xi)/(grid-1))
			sy := logScale(lo, hi, float64(yi)/(grid-1))
			fmt.Print(string(classify(scr, anchors, sx, sy)))
		}
		fmt.Println()
	}
	fmt.Println("\n(axes are log-scaled selectivities: x = l_shipdate dimension,")
	fmt.Println(" y = o_orderdate dimension; the straight/hyperbolic 'S' boundaries")
	fmt.Println(" around each anchor are the §5.3 geometry)")
}

// classify probes the SCR cache via ProbeCheck without mutating usage
// counters or triggering optimizer calls.
func classify(scr *core.SCR, anchors [][]float64, sx, sy float64) byte {
	for _, a := range anchors {
		if math.Abs(math.Log(a[0]/sx)) < 0.08 && math.Abs(math.Log(a[1]/sy)) < 0.08 {
			return '*'
		}
	}
	switch scr.ProbeCheck([]float64{sx, sy}) {
	case core.ViaSelectivity:
		return 'S'
	case core.ViaCost:
		return 'C'
	default:
		return '.'
	}
}

func logScale(lo, hi, t float64) float64 {
	return math.Exp(math.Log(lo) + t*(math.Log(hi)-math.Log(lo)))
}
