// SaaS: an operational multi-tenant workload with a hard plan-cache budget
// and a dynamic sub-optimality bound.
//
// A SaaS backend runs one hot parameterized query per endpoint, across
// tenants whose data sizes differ by orders of magnitude — so instance
// selectivities differ by orders of magnitude too. Memory for cached plans
// is rationed per query (the paper's plan budget k, §6.3.1), and cheap
// instances can tolerate a looser bound than expensive ones (Appendix D's
// dynamic λ).
//
// Run with: go run ./examples/saas
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	sys, err := engine.NewSystem(catalog.NewRD1(), 11)
	if err != nil {
		log.Fatal(err)
	}
	tpl := &query.Template{
		Name:    "tenant_activity",
		Catalog: sys.Cat,
		Tables:  []string{"events", "sessions", "devices"},
		Joins: []query.Join{
			{Left: "events", Right: "sessions",
				LeftCol: "events_fk", RightCol: "sessions_id", Selectivity: 1.0 / 9_000_000},
			{Left: "sessions", Right: "devices",
				LeftCol: "sessions_fk", RightCol: "devices_id", Selectivity: 1.0 / 1_200_000},
		},
		Preds: []query.Predicate{
			{Table: "events", Column: "events_ts", Op: query.GE, Param: 0},
			{Table: "events", Column: "events_amount", Op: query.GE, Param: 1},
			{Table: "sessions", Column: "sessions_score", Op: query.LE, Param: 2},
		},
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		log.Fatal(err)
	}

	// Tenants: small tenants produce tiny selectivities, the whale tenant
	// produces broad ones. 400 requests, tenant chosen by a skewed dice.
	rng := rand.New(rand.NewSource(3))
	tenantScale := []float64{0.0005, 0.002, 0.01, 0.05, 0.4} // tenant size bands
	var insts []workload.Instance
	for i := 0; i < 400; i++ {
		band := tenantScale[rng.Intn(len(tenantScale))]
		sv := []float64{
			clamp(band * (0.5 + rng.Float64())),
			clamp(band * 2 * (0.5 + rng.Float64())),
			clamp(band * 4 * (0.5 + rng.Float64())),
		}
		insts = append(insts, workload.Instance{SV: sv})
	}
	insts, err = workload.Prepare(eng, insts)
	if err != nil {
		log.Fatal(err)
	}
	seq := &workload.Sequence{Name: "saas", Tpl: tpl, Instances: insts}

	// Reference cost for the dynamic λ decay: the median optimal cost.
	costs := make([]float64, len(insts))
	for i, q := range insts {
		costs[i] = q.OptCost
	}
	ref := harness.Percentile(costs, 0.5)

	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"SCR λ=1.2, unlimited cache", core.Config{Lambda: 1.2, DetectViolations: true}},
		{"SCR λ=1.2, budget k=5", core.Config{Lambda: 1.2, PlanBudget: 5, DetectViolations: true}},
		{"SCR λ=1.2, budget k=2", core.Config{Lambda: 1.2, PlanBudget: 2, DetectViolations: true}},
		{"SCR dynamic λ∈[1.2,8], k=5", core.Config{Lambda: 1.2, PlanBudget: 5, DetectViolations: true,
			Dynamic: &core.DynamicLambda{Min: 1.2, Max: 8, RefCost: ref}}},
	}
	fmt.Printf("multi-tenant workload: %d requests, %d distinct optimal plans\n\n",
		len(insts), workload.DistinctOptimalPlans(insts))
	fmt.Printf("%-30s %8s %8s %10s %8s %10s\n",
		"configuration", "MSO", "TC", "numOpt%", "plans", "cache mem")
	for _, c := range configs {
		tech, err := core.NewSCR(eng, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := harness.Run(context.Background(), eng, tech, seq, harness.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %8.2f %8.3f %9.1f%% %8d %9dB\n",
			c.label, res.MSO, res.TotalCostRatio, res.OptFraction*100,
			res.NumPlans, res.MemoryBytes)
	}
	fmt.Println("\nreading the table: tightening the plan budget trades optimizer calls for")
	fmt.Println("memory without ever violating the guarantee (evicted plans take their")
	fmt.Println("instance entries with them); dynamic λ relaxes cheap tenants' bound to win")
	fmt.Println("back plan-cache space and optimizer calls.")
}

func clamp(v float64) float64 {
	return math.Max(1e-4, math.Min(v, 0.95))
}
