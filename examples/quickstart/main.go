// Quickstart: the smallest end-to-end use of the library, written against
// the public pqo facade (the single import external consumers use).
//
// It builds a database system (catalog + statistics + optimizer), declares
// a parameterized query template from SQL, wraps it in an engine, and
// processes a stream of query instances through SCR with a λ=2
// sub-optimality guarantee — printing, for each instance, whether the plan
// came from the cache (selectivity or cost check) or from a fresh
// optimizer call.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pqo"
)

func main() {
	// 1. A database: TPC-H-shaped catalog at scale factor 0.1, with
	//    histograms built from deterministic synthetic data.
	sys, err := pqo.NewSystem(pqo.TPCH(0.1), 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A parameterized query: lineitem ⋈ orders with two parameterized
	//    range predicates (the paper's "dimensions", placeholders ?0, ?1).
	tpl, err := pqo.ParseTemplate("quickstart", `
		SELECT * FROM lineitem, orders
		WHERE lineitem.l_orderkey = orders.o_orderkey
		  AND lineitem.l_shipdate <= ?0
		  AND orders.o_totalprice >= ?1`, sys.Cat)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		log.Fatal(err)
	}

	// 3. SCR with a guaranteed cost sub-optimality bound of 2.
	scr, err := pqo.New(eng, pqo.WithLambda(2))
	if err != nil {
		log.Fatal(err)
	}

	// 4. A stream of query instances. In an application these arrive as
	//    parameter values; here we specify predicate selectivities
	//    directly and also show the parameter-value path via stats.
	fmt.Println("query:", tpl.SQL())
	fmt.Println()
	instances := [][]float64{
		{0.02, 0.10}, // ships recently, big orders
		{0.021, 0.11},
		{0.018, 0.09},
		{0.60, 0.50}, // a reporting-style broad instance
		{0.58, 0.52},
		{0.02, 0.80},
		{0.019, 0.78},
		{0.0005, 0.001}, // a needle lookup
	}
	ctx := context.Background()
	for i, sv := range instances {
		dec, err := scr.Process(ctx, sv)
		if err != nil {
			log.Fatal(err)
		}
		cost, err := eng.Recost(dec.Plan, sv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("instance %d  sv=%-14v  via=%-18s  est.cost=%.1f\n",
			i+1, sv, dec.Via, cost)
	}

	st := scr.Stats()
	fmt.Printf("\noptimizer calls: %d of %d instances; plans cached: %d (memory ~%d bytes)\n",
		st.OptCalls, st.Instances, st.CurPlans, st.MemoryBytes)

	// Bonus: binding real parameter values instead of selectivities.
	v, err := sys.Stats.ValueForSelectivityLE("lineitem", "l_shipdate", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor reference: selectivity 0.02 on l_shipdate corresponds to l_shipdate <= %.0f\n", v)
}
