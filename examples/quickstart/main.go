// Quickstart: the smallest end-to-end use of the library.
//
// It builds a database system (catalog + statistics + optimizer), declares
// a parameterized query template, wraps it in an engine, and processes a
// stream of query instances through SCR with a λ=2 sub-optimality
// guarantee — printing, for each instance, whether the plan came from the
// cache (selectivity or cost check) or from a fresh optimizer call.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/query"
)

func main() {
	// 1. A database: TPC-H-shaped catalog at scale factor 0.1, with
	//    histograms built from deterministic synthetic data.
	sys, err := engine.NewSystem(catalog.NewTPCH(0.1), 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A parameterized query: lineitem ⋈ orders with two parameterized
	//    range predicates (the paper's "dimensions").
	tpl := &query.Template{
		Name:    "quickstart",
		Catalog: sys.Cat,
		Tables:  []string{"lineitem", "orders"},
		Joins: []query.Join{{
			Left: "lineitem", Right: "orders",
			LeftCol: "l_orderkey", RightCol: "o_orderkey",
			Selectivity: 1.0 / 150_000,
		}},
		Preds: []query.Predicate{
			{Table: "lineitem", Column: "l_shipdate", Op: query.LE, Param: 0},
			{Table: "orders", Column: "o_totalprice", Op: query.GE, Param: 1},
		},
	}
	eng, err := sys.EngineFor(tpl)
	if err != nil {
		log.Fatal(err)
	}

	// 3. SCR with a guaranteed sub-optimality bound of 2.
	scr, err := core.NewSCR(eng, core.Config{Lambda: 2})
	if err != nil {
		log.Fatal(err)
	}

	// 4. A stream of query instances. In an application these arrive as
	//    parameter values; here we specify predicate selectivities
	//    directly and also show the parameter-value path via stats.
	fmt.Println("query:", tpl.SQL())
	fmt.Println()
	instances := [][]float64{
		{0.02, 0.10}, // ships recently, big orders
		{0.021, 0.11},
		{0.018, 0.09},
		{0.60, 0.50}, // a reporting-style broad instance
		{0.58, 0.52},
		{0.02, 0.80},
		{0.019, 0.78},
		{0.0005, 0.001}, // a needle lookup
	}
	for i, sv := range instances {
		dec, err := scr.Process(sv)
		if err != nil {
			log.Fatal(err)
		}
		cost, err := eng.Recost(dec.Plan, sv)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("instance %d  sv=%-14v  via=%-18s  est.cost=%.1f\n",
			i+1, sv, dec.Via, cost)
	}

	st := scr.Stats()
	fmt.Printf("\noptimizer calls: %d of %d instances; plans cached: %d (memory ~%d bytes)\n",
		st.OptCalls, st.Instances, st.CurPlans, st.MemoryBytes)

	// Bonus: binding real parameter values instead of selectivities.
	v, err := sys.Stats.ValueForSelectivityLE("lineitem", "l_shipdate", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor reference: selectivity 0.02 on l_shipdate corresponds to l_shipdate <= %.0f\n", v)
}
